let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

(* --- Page -------------------------------------------------------------- *)

let page_helpers () =
  checki "size" 4096 Memsys.Page.size;
  checki "number" 2 (Memsys.Page.number 8192);
  checki "base" 8192 (Memsys.Page.base 9000);
  checki "offset" 808 (Memsys.Page.offset 9000);
  checki "round_up exact" 4096 (Memsys.Page.round_up 4096);
  checki "round_up" 8192 (Memsys.Page.round_up 4097);
  checki "count" 2 (Memsys.Page.count ~bytes:4097)

let page_span () =
  Alcotest.check
    Alcotest.(list int)
    "span crossing boundary" [ 0; 1 ]
    (Memsys.Page.span ~addr:4000 ~len:200);
  Alcotest.check Alcotest.(list int) "empty" [] (Memsys.Page.span ~addr:0 ~len:0)

(* --- Symbol ------------------------------------------------------------ *)

let symbol_make_validates () =
  checkb "bad alignment rejected" true
    (try
       ignore
         (Memsys.Symbol.make ~name:"x" ~section:Memsys.Symbol.Data ~size:8
            ~alignment:3);
       false
     with Invalid_argument _ -> true);
  checkb "negative size rejected" true
    (try
       ignore
         (Memsys.Symbol.make ~name:"x" ~section:Memsys.Symbol.Data ~size:(-1)
            ~alignment:8);
       false
     with Invalid_argument _ -> true)

let symbol_is_function () =
  let f =
    Memsys.Symbol.make ~name:"f" ~section:Memsys.Symbol.Text ~size:64
      ~alignment:16
  in
  let d =
    Memsys.Symbol.make ~name:"d" ~section:Memsys.Symbol.Data ~size:8
      ~alignment:8
  in
  checkb "text is function" true (Memsys.Symbol.is_function f);
  checkb "data is not" false (Memsys.Symbol.is_function d)

let symbol_layout_order () =
  checkb "text first" true
    (List.hd Memsys.Symbol.sections_in_layout_order = Memsys.Symbol.Text);
  checki "all six sections" 6 (List.length Memsys.Symbol.sections_in_layout_order)

(* --- Address space ----------------------------------------------------- *)

let vma tag start len =
  {
    Memsys.Address_space.start;
    len;
    prot = Memsys.Address_space.Read_write;
    tag;
    backing = Memsys.Address_space.Anonymous;
  }

let aspace_map_find () =
  let a = Memsys.Address_space.create () in
  Memsys.Address_space.map a (vma "one" 0x1000 0x1000);
  Memsys.Address_space.map a (vma "two" 0x4000 0x2000);
  checkb "finds containing vma" true
    (match Memsys.Address_space.find a 0x4800 with
    | Some v -> v.Memsys.Address_space.tag = "two"
    | None -> false);
  checkb "miss" true (Memsys.Address_space.find a 0x3000 = None);
  checki "total" 0x3000 (Memsys.Address_space.total_mapped a)

let aspace_rejects_overlap () =
  let a = Memsys.Address_space.create () in
  Memsys.Address_space.map a (vma "one" 0x1000 0x1000);
  checkb "overlap rejected" true
    (try
       Memsys.Address_space.map a (vma "bad" 0x1800 0x1000);
       false
     with Invalid_argument _ -> true)

let aspace_unmap () =
  let a = Memsys.Address_space.create () in
  Memsys.Address_space.map a (vma "one" 0x1000 0x1000);
  Memsys.Address_space.unmap a ~start:0x1000;
  checkb "gone" true (Memsys.Address_space.find a 0x1000 = None);
  Alcotest.check_raises "unknown start" Not_found (fun () ->
      Memsys.Address_space.unmap a ~start:0x9999)

let aspace_text_aliasing () =
  let a = Memsys.Address_space.create () in
  Memsys.Address_space.map a
    {
      Memsys.Address_space.start = 0x400000;
      len = 0x2000;
      prot = Memsys.Address_space.Read_exec;
      tag = ".text";
      backing =
        Memsys.Address_space.Per_isa
          [ (Isa.Arch.Arm64, "a.out_arm64"); (Isa.Arch.X86_64, "a.out_x86_64") ];
    };
  Alcotest.check
    Alcotest.(option string)
    "arm image" (Some "a.out_arm64")
    (Memsys.Address_space.active_text_image a Isa.Arch.Arm64);
  Alcotest.check
    Alcotest.(option string)
    "x86 image" (Some "a.out_x86_64")
    (Memsys.Address_space.active_text_image a Isa.Arch.X86_64)

let aspace_pages_sorted () =
  let a = Memsys.Address_space.create () in
  Memsys.Address_space.map a (vma "hi" 0x8000 0x1000);
  Memsys.Address_space.map a (vma "lo" 0x1000 0x1000);
  Alcotest.check Alcotest.(list int) "page list" [ 1; 8 ]
    (Memsys.Address_space.pages a)

(* --- Cache ------------------------------------------------------------- *)

let cache_resident_low_miss () =
  let mr =
    Memsys.Cache.miss_rate Memsys.Cache.l1i ~footprint_bytes:16_384 ~reuse:0.99
  in
  checkb "resident: tiny miss rate" true (mr < 0.01)

let cache_thrashing_high_miss () =
  let small =
    Memsys.Cache.miss_rate Memsys.Cache.l1d ~footprint_bytes:16_384 ~reuse:0.5
  in
  let big =
    Memsys.Cache.miss_rate Memsys.Cache.l1d ~footprint_bytes:(1 lsl 22)
      ~reuse:0.5
  in
  checkb "bigger footprint misses more" true (big > small);
  checkb "bounded" true (big <= 1.0)

let cache_conflict_perturbation_bounds () =
  for seed = 0 to 500 do
    let h = Memsys.Cache.layout_hash ~addresses:[ seed * 64; seed * 128 ] in
    let f = Memsys.Cache.conflict_perturbation Memsys.Cache.l1i ~layout_hash:h in
    checkb "in [0.8, 2.9]" true (f >= 0.8 && f <= 2.9)
  done

let cache_layout_hash_stable () =
  let h1 = Memsys.Cache.layout_hash ~addresses:[ 1; 2; 3 ] in
  let h2 = Memsys.Cache.layout_hash ~addresses:[ 1; 2; 3 ] in
  let h3 = Memsys.Cache.layout_hash ~addresses:[ 1; 2; 4 ] in
  checki "stable" h1 h2;
  checkb "sensitive" true (h1 <> h3)

(* --- TLS --------------------------------------------------------------- *)

let tls_syms =
  [
    Memsys.Symbol.make ~name:"errno_tls" ~section:Memsys.Symbol.Tdata ~size:4
      ~alignment:4;
    Memsys.Symbol.make ~name:"rng_state" ~section:Memsys.Symbol.Tdata ~size:16
      ~alignment:8;
    Memsys.Symbol.make ~name:"scratch" ~section:Memsys.Symbol.Tbss ~size:64
      ~alignment:16;
    Memsys.Symbol.make ~name:"not_tls" ~section:Memsys.Symbol.Data ~size:8
      ~alignment:8;
  ]

let tls_native_layouts_differ () =
  let arm = Memsys.Tls.layout (Memsys.Tls.Native Isa.Arch.Arm64) tls_syms in
  let x86 = Memsys.Tls.layout (Memsys.Tls.Native Isa.Arch.X86_64) tls_syms in
  checkb "variant 1 vs variant 2 disagree" false (Memsys.Tls.compatible arm x86);
  (* ARM64 variant 1: positive offsets after the 16-byte TCB. *)
  List.iter
    (fun s -> checkb "arm offsets positive" true (s.Memsys.Tls.offset >= 16))
    arm.Memsys.Tls.slots;
  (* x86-64 variant 2: negative offsets below the thread pointer. *)
  List.iter
    (fun s -> checkb "x86 offsets negative" true (s.Memsys.Tls.offset < 0))
    x86.Memsys.Tls.slots

let tls_common_matches_x86 () =
  let common = Memsys.Tls.layout Memsys.Tls.Common_x86 tls_syms in
  let x86 = Memsys.Tls.layout (Memsys.Tls.Native Isa.Arch.X86_64) tls_syms in
  checkb "common layout = x86 mapping" true (Memsys.Tls.compatible common x86)

let tls_ignores_non_tls () =
  let l = Memsys.Tls.layout Memsys.Tls.Common_x86 tls_syms in
  checki "three TLS symbols" 3 (List.length l.Memsys.Tls.slots);
  checkb "non-TLS symbol absent" true (Memsys.Tls.offset_of l "not_tls" = None)

let tls_respects_alignment () =
  List.iter
    (fun scheme ->
      let l = Memsys.Tls.layout scheme tls_syms in
      List.iter2
        (fun (slot : Memsys.Tls.slot) sym ->
          checki
            (Printf.sprintf "%s aligned" slot.Memsys.Tls.symbol)
            0
            (((slot.Memsys.Tls.offset mod sym.Memsys.Symbol.alignment)
             + sym.Memsys.Symbol.alignment)
            mod sym.Memsys.Symbol.alignment))
        l.Memsys.Tls.slots
        (List.filter
           (fun s ->
             s.Memsys.Symbol.section = Memsys.Symbol.Tdata
             || s.Memsys.Symbol.section = Memsys.Symbol.Tbss)
           tls_syms))
    [ Memsys.Tls.Native Isa.Arch.Arm64; Memsys.Tls.Native Isa.Arch.X86_64;
      Memsys.Tls.Common_x86 ]

let tls_no_overlap () =
  List.iter
    (fun scheme ->
      let l = Memsys.Tls.layout scheme tls_syms in
      let ranges =
        List.map
          (fun (s : Memsys.Tls.slot) ->
            (s.Memsys.Tls.offset, s.Memsys.Tls.offset + s.Memsys.Tls.size))
          l.Memsys.Tls.slots
        |> List.sort compare
      in
      let rec disjoint = function
        | (_, e) :: ((s, _) :: _ as rest) ->
          checkb "slots disjoint" true (e <= s);
          disjoint rest
        | _ -> ()
      in
      disjoint ranges)
    [ Memsys.Tls.Native Isa.Arch.Arm64; Memsys.Tls.Native Isa.Arch.X86_64;
      Memsys.Tls.Common_x86 ]

let suite =
  [
    ("page helpers", `Quick, page_helpers);
    ("page span", `Quick, page_span);
    ("symbol validation", `Quick, symbol_make_validates);
    ("symbol is_function", `Quick, symbol_is_function);
    ("section layout order", `Quick, symbol_layout_order);
    ("address space map/find", `Quick, aspace_map_find);
    ("address space rejects overlap", `Quick, aspace_rejects_overlap);
    ("address space unmap", `Quick, aspace_unmap);
    ("address space text aliasing", `Quick, aspace_text_aliasing);
    ("address space page list", `Quick, aspace_pages_sorted);
    ("cache: resident loop barely misses", `Quick, cache_resident_low_miss);
    ("cache: thrashing misses more", `Quick, cache_thrashing_high_miss);
    ("cache: conflict factor bounded", `Quick, cache_conflict_perturbation_bounds);
    ("cache: layout hash stable", `Quick, cache_layout_hash_stable);
    ("tls: native layouts differ", `Quick, tls_native_layouts_differ);
    ("tls: common layout = x86 mapping", `Quick, tls_common_matches_x86);
    ("tls: ignores non-TLS symbols", `Quick, tls_ignores_non_tls);
    ("tls: respects alignment", `Quick, tls_respects_alignment);
    ("tls: no slot overlap", `Quick, tls_no_overlap);
  ]
