let checkb msg = Alcotest.check Alcotest.bool msg

let emulation_direction_asymmetry () =
  (* Figure 1: x86-on-ARM is one to two orders of magnitude worse than
     ARM-on-x86. *)
  List.iter
    (fun bench ->
      let spec = Workload.Spec.spec bench Workload.Spec.A in
      let a = Baseline.Emulation.slowdown Baseline.Emulation.Arm_on_x86 spec ~threads:1 in
      let x = Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:1 in
      checkb "x86-on-arm much worse" true (x > 5.0 *. a))
    Workload.Spec.npb

let emulation_magnitudes () =
  (* Figure 1 axes: ARM-on-x86 in 1..100, x86-on-ARM in 10..10000. *)
  List.iter
    (fun bench ->
      List.iter
        (fun cls ->
          List.iter
            (fun threads ->
              let spec = Workload.Spec.spec bench cls in
              let a =
                Baseline.Emulation.slowdown Baseline.Emulation.Arm_on_x86 spec
                  ~threads
              in
              let x =
                Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec
                  ~threads
              in
              checkb "top graph within axis" true (a >= 1.0 && a <= 100.0);
              checkb "bottom graph within axis" true (x >= 10.0 && x <= 10000.0))
            [ 1; 2; 4; 8 ])
        Workload.Spec.classes)
    Workload.Spec.npb

let emulation_grows_with_threads () =
  (* TCG serializes the guest: more native threads = bigger slowdown. *)
  let spec = Workload.Spec.spec Workload.Spec.CG Workload.Spec.B in
  List.iter
    (fun dir ->
      let s1 = Baseline.Emulation.slowdown dir spec ~threads:1 in
      let s8 = Baseline.Emulation.slowdown dir spec ~threads:8 in
      checkb "8 threads worse than 1" true (s8 > s1))
    [ Baseline.Emulation.Arm_on_x86; Baseline.Emulation.X86_on_arm ]

let emulation_redis_anchors () =
  (* The paper reports Redis at 2.6x (ARM-on-x86) and 34x (x86-on-ARM). *)
  let spec = Workload.Spec.spec Workload.Spec.Redis Workload.Spec.A in
  let a = Baseline.Emulation.slowdown Baseline.Emulation.Arm_on_x86 spec ~threads:1 in
  let x = Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:1 in
  checkb "redis arm-on-x86 ~2.6x" true (a > 1.5 && a < 4.5);
  checkb "redis x86-on-arm ~34x" true (x > 20.0 && x < 55.0)

let emulation_deterministic () =
  let spec = Workload.Spec.spec Workload.Spec.FT Workload.Spec.C in
  Alcotest.check (Alcotest.float 0.0) "stable"
    (Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:4)
    (Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:4)

let parallel_efficiency_bounds () =
  let e1 = Baseline.Emulation.parallel_efficiency ~threads:1 ~cores:8 in
  let e8 = Baseline.Emulation.parallel_efficiency ~threads:8 ~cores:8 in
  checkb "one thread = 1" true (Float.abs (e1 -. 1.0) < 1e-9);
  checkb "sublinear" true (e8 > 4.0 && e8 < 8.0);
  (* Capped at core count. *)
  let e16 = Baseline.Emulation.parallel_efficiency ~threads:16 ~cores:8 in
  checkb "capped" true (Float.abs (e16 -. e8) < 1e-9)

let padmig_is_b_profile () =
  (* Figure 11: serializing IS B takes several seconds; ser+deser ~8 s. *)
  let spec = Workload.Spec.spec Workload.Spec.IS Workload.Spec.B in
  let p =
    Baseline.Padmig.migration_profile spec ~from_:Isa.Arch.X86_64
      ~to_:Isa.Arch.Arm64
  in
  checkb "serialize seconds" true
    (p.Baseline.Padmig.serialize_s > 1.0 && p.Baseline.Padmig.serialize_s < 4.0);
  checkb "deserialize longer on ARM" true
    (p.Baseline.Padmig.deserialize_s > p.Baseline.Padmig.serialize_s);
  let total = Baseline.Padmig.total_migration_s p in
  checkb "total 5-12 s" true (total > 5.0 && total < 12.0);
  checkb "transfer negligible on PCIe" true
    (p.Baseline.Padmig.transfer_s < 0.2)

let padmig_vs_native_gap () =
  (* The multi-ISA binary migrates in sub-millisecond stack-transformation
     time; PadMig needs seconds — four orders of magnitude. *)
  let spec = Workload.Spec.spec Workload.Spec.IS Workload.Spec.B in
  let p =
    Baseline.Padmig.migration_profile spec ~from_:Isa.Arch.X86_64
      ~to_:Isa.Arch.Arm64
  in
  let tc =
    Compiler.Toolchain.compile (Workload.Programs.program Workload.Spec.IS Workload.Spec.B)
  in
  let fname, mig_id = List.hd (Runtime.Interp.reachable_mig_sites tc) in
  match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
  | None -> Alcotest.fail "unreached"
  | Some st -> begin
    match Runtime.Transform.transform tc st with
    | Error e -> Alcotest.fail e
    | Ok (_, cost) ->
      checkb "native 1000x faster" true
        (Baseline.Padmig.total_migration_s p
        > 1000.0 *. cost.Runtime.Transform.latency_s)
  end

let padmig_java_slowdown () =
  checkb "java ~1.5-2.5x slower" true
    (Baseline.Padmig.java_slowdown > 1.4 && Baseline.Padmig.java_slowdown < 2.5)

let suite =
  [
    ("emulation direction asymmetry", `Quick, emulation_direction_asymmetry);
    ("emulation magnitudes match Figure 1 axes", `Quick, emulation_magnitudes);
    ("emulation slowdown grows with threads", `Quick, emulation_grows_with_threads);
    ("emulation Redis anchors", `Quick, emulation_redis_anchors);
    ("emulation deterministic", `Quick, emulation_deterministic);
    ("parallel efficiency bounds", `Quick, parallel_efficiency_bounds);
    ("padmig IS B profile", `Quick, padmig_is_b_profile);
    ("padmig vs native gap", `Quick, padmig_vs_native_gap);
    ("padmig java slowdown", `Quick, padmig_java_slowdown);
  ]
