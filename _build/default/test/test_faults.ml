(* Failure injection: corrupted metadata, invalid requests, and
   unschedulable work must fail loudly and gracefully — never silently
   migrate wrong state. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let binary = lazy (Hetmig.Het.compile_benchmark Workload.Spec.EP Workload.Spec.A)

(* Rebuild a toolchain output with tampered destination stackmaps. *)
let tamper_stackmaps (tc : Compiler.Toolchain.t) ~victim_arch ~drop_var =
  let isas =
    List.map
      (fun (per : Compiler.Toolchain.per_isa) ->
        if per.Compiler.Toolchain.arch <> victim_arch then per
        else
          {
            per with
            Compiler.Toolchain.stackmaps =
              List.map
                (fun (e : Compiler.Stackmap.entry) ->
                  {
                    e with
                    Compiler.Stackmap.live =
                      List.filter
                        (fun (name, _) -> name <> drop_var)
                        e.Compiler.Stackmap.live;
                  })
                per.Compiler.Toolchain.stackmaps;
          })
      tc.Compiler.Toolchain.isas
  in
  { tc with Compiler.Toolchain.isas }

let pick_live_var tc =
  (* Any variable live at some reachable migration point. *)
  let sites = Runtime.Interp.reachable_mig_sites tc in
  List.find_map
    (fun (fname, mig_id) ->
      match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
      | None -> None
      | Some st ->
        let inner = Runtime.Thread_state.innermost st in
        (match Runtime.Interp.live_values tc st inner with
        | (name, _) :: _ -> Some (name, fname, mig_id)
        | [] -> None))
    sites

let corrupted_dest_stackmap_rejected () =
  let tc = Lazy.force binary in
  match pick_live_var tc with
  | None -> Alcotest.fail "no live variable found"
  | Some (var, fname, mig_id) ->
    let bad = tamper_stackmaps tc ~victim_arch:Isa.Arch.Arm64 ~drop_var:var in
    (match Runtime.Interp.state_at bad Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> Alcotest.fail "unreached"
    | Some st -> begin
      (* Transformation consults the (corrupted) ARM metadata as the
         destination: it must refuse, not silently drop the value. *)
      match Runtime.Transform.transform bad st with
      | Error _ -> ()
      | Ok (dst, _) ->
        (* If it succeeded despite the tampering, verification must catch
           the lost value. *)
        checkb "verification catches the corruption" true
          (Runtime.Transform.verify bad st dst <> Ok ())
    end)

let corrupted_source_stackmap_rejected () =
  let tc = Lazy.force binary in
  match pick_live_var tc with
  | None -> Alcotest.fail "no live variable found"
  | Some (var, fname, mig_id) ->
    let bad = tamper_stackmaps tc ~victim_arch:Isa.Arch.X86_64 ~drop_var:var in
    (match Runtime.Interp.state_at bad Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> Alcotest.fail "unreached"
    | Some st -> begin
      match Runtime.Transform.transform bad st with
      | Error _ -> ()
      | Ok (dst, _) ->
        checkb "verification catches the corruption" true
          (Runtime.Transform.verify bad st dst <> Ok ())
    end)

let migrate_to_unknown_node_rejected () =
  let cluster = Hetmig.Het.make_cluster () in
  let spec = Workload.Spec.spec Workload.Spec.EP Workload.Spec.A in
  let proc =
    Hetmig.Het.deploy cluster (Lazy.force binary) ~spec ~threads:1 ~node:0 ()
  in
  checkb "unknown node raises" true
    (try
       Hetmig.Het.migrate cluster proc ~to_node:7;
       false
     with Invalid_argument _ -> true)

let oversized_job_never_admitted () =
  (* A job wider than any machine cannot be placed; the scheduler must
     terminate and report the shortfall rather than hang or lie. *)
  let fat =
    Sched.Job.make ~jid:0
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:64 ~arrival:0.0
  in
  let ok =
    Sched.Job.make ~jid:1
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:1 ~arrival:0.0
  in
  let r = Sched.Scheduler.run Sched.Policy.Static_x86_pair [ fat; ok ] in
  checki "only the feasible job completes" 1 r.Sched.Scheduler.completed

let invalid_job_parameters_rejected () =
  checkb "zero threads" true
    (try
       ignore
         (Sched.Job.make ~jid:0
            ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
            ~threads:0 ~arrival:0.0);
       false
     with Invalid_argument _ -> true);
  checkb "negative arrival" true
    (try
       ignore
         (Sched.Job.make ~jid:0
            ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
            ~threads:1 ~arrival:(-1.0));
       false
     with Invalid_argument _ -> true)

let negative_message_rejected () =
  let engine = Sim.Engine.create () in
  let bus = Kernel.Message.create engine Machine.Interconnect.dolphin_pxh810 in
  checkb "negative size rejected" true
    (try
       Kernel.Message.send bus Kernel.Message.Page_request ~bytes:(-1)
         ~on_delivery:(fun () -> ());
       false
     with Invalid_argument _ -> true)

let zero_budget_rejected () =
  checkb "instrument with budget 0" true
    (try
       ignore
         (Compiler.Migration_points.instrument ~budget:0
            (Workload.Programs.program Workload.Spec.EP Workload.Spec.A));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("corrupted destination stackmap rejected", `Quick,
     corrupted_dest_stackmap_rejected);
    ("corrupted source stackmap rejected", `Quick,
     corrupted_source_stackmap_rejected);
    ("migration to unknown node rejected", `Quick,
     migrate_to_unknown_node_rejected);
    ("oversized job never admitted", `Quick, oversized_job_never_admitted);
    ("invalid job parameters rejected", `Quick, invalid_job_parameters_rejected);
    ("negative message size rejected", `Quick, negative_message_rejected);
    ("zero instrumentation budget rejected", `Quick, zero_budget_rejected);
  ]
