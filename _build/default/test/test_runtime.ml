let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

open Ir.Prog
open Runtime

let v ?(init = Scalar) vname ty = { vname; ty; init }

let w n =
  Work { instructions = n; category = Isa.Cost_model.Mixed; memory_touched = 0 }

(* A three-deep program exercising pointers, register and slot locals. *)
let demo_prog =
  let leaf =
    make_func ~name:"leaf" ~params:[ v "p" Ir.Ty.I64 ]
      ~body:[ Def (v "acc" Ir.Ty.I64); w 100; Use "p"; Use "acc" ]
  in
  let mid =
    make_func ~name:"mid" ~params:[ v "n" Ir.Ty.I64 ]
      ~body:
        [
          Def (v "x" Ir.Ty.I64);
          Def (v "buf" Ir.Ty.I64);
          Def (v ~init:(Ptr_to_local "buf") "bp" Ir.Ty.Ptr);
          Def (v ~init:(Ptr_to_global "table") "gp" Ir.Ty.Ptr);
          Loop
            {
              trips = 3;
              body =
                [
                  w 1000;
                  Call { site_id = 0; callee = "leaf"; args = [ "x" ] };
                  Use "bp"; Use "buf"; Use "gp"; Use "n";
                ];
            };
          Use "x";
        ]
  in
  let main =
    make_func ~name:"main" ~params:[]
      ~body:
        [
          Def (v "m" Ir.Ty.I64);
          Call { site_id = 0; callee = "mid"; args = [ "m" ] };
          Use "m";
        ]
  in
  make ~name:"demo" ~funcs:[ main; mid; leaf ]
    ~globals:
      [ Memsys.Symbol.make ~name:"table" ~section:Memsys.Symbol.Data ~size:4096
          ~alignment:8 ]
    ~entry:"main"

let demo = Compiler.Toolchain.compile demo_prog

(* --- Stack_mem ---------------------------------------------------------- *)

let stack_mem_rw () =
  let m = Stack_mem.create ~lo:0 ~hi:4096 in
  Stack_mem.write m 8 42L;
  Alcotest.check Alcotest.int64 "read back" 42L (Stack_mem.read m 8);
  Alcotest.check Alcotest.int64 "unwritten zero" 0L (Stack_mem.read m 16)

let stack_mem_bounds () =
  let m = Stack_mem.create ~lo:0 ~hi:64 in
  checkb "oob rejected" true
    (try
       Stack_mem.write m 64 1L;
       false
     with Invalid_argument _ -> true);
  checkb "misaligned rejected" true
    (try
       ignore (Stack_mem.read m 4);
       false
     with Invalid_argument _ -> true)

let stack_mem_halves () =
  let m = Stack_mem.create ~lo:0 ~hi:4096 in
  let upper, lower = Stack_mem.halves m in
  checki "upper top" 4096 (Stack_mem.hi upper);
  checki "split point" 2048 (Stack_mem.lo upper);
  checki "lower top" 2048 (Stack_mem.hi lower);
  Stack_mem.write upper 2048 7L;
  Alcotest.check Alcotest.int64 "shared storage" 7L (Stack_mem.read m 2048)

(* --- Regfile ------------------------------------------------------------- *)

let regfile_rw () =
  let r = Regfile.create Isa.Arch.Arm64 in
  let x19 = Isa.Register.by_name Isa.Arch.Arm64 "x19" in
  Regfile.set r x19 99L;
  Alcotest.check Alcotest.int64 "read back" 99L (Regfile.get r x19);
  Regfile.set_sp r 0x1000;
  checki "sp helper" 0x1000 (Regfile.get_sp r)

let regfile_wrong_isa () =
  let r = Regfile.create Isa.Arch.Arm64 in
  let rax = Isa.Register.by_name Isa.Arch.X86_64 "rax" in
  checkb "cross-ISA rejected" true
    (try
       Regfile.set r rax 1L;
       false
     with Invalid_argument _ -> true)

(* --- RA encoding ---------------------------------------------------------- *)

let ra_roundtrip () =
  let base_of name = Compiler.Toolchain.symbol_address demo name in
  let per = Compiler.Toolchain.for_arch demo Isa.Arch.X86_64 in
  List.iter
    (fun (e : Compiler.Stackmap.entry) ->
      let key = (e.Compiler.Stackmap.kind, e.site_id) in
      let addr =
        Ra_encoding.encode Isa.Arch.X86_64 ~base_of ~fname:e.fname ~key
      in
      match
        Ra_encoding.decode Isa.Arch.X86_64 ~base_of
          ~stackmaps:per.Compiler.Toolchain.stackmaps addr
      with
      | Some (fname, key') ->
        checkb "roundtrip" true (fname = e.fname && key' = key)
      | None -> Alcotest.fail "decode failed")
    (Compiler.Toolchain.for_arch demo Isa.Arch.X86_64).Compiler.Toolchain
      .stackmaps

let ra_offsets_differ_across_isas () =
  let key = (Ir.Liveness.At_call, 0) in
  let a = Ra_encoding.site_offset Isa.Arch.Arm64 ~fname:"mid" ~key in
  let x = Ra_encoding.site_offset Isa.Arch.X86_64 ~fname:"mid" ~key in
  checkb "offsets differ" true (a <> x);
  checki "arm 4-aligned" 0 (a mod 4)

(* --- Interp ----------------------------------------------------------------- *)

let interp_completes_balanced () =
  List.iter
    (fun arch ->
      let checks = Interp.run_to_completion demo arch in
      checkb "executed checks" true (checks > 0))
    Isa.Arch.all

let interp_reaches_all_sites () =
  let sites = Interp.reachable_mig_sites demo in
  checkb "sites exist" true (List.length sites > 0);
  List.iter
    (fun (fname, mig_id) ->
      List.iter
        (fun arch ->
          match Interp.state_at demo arch ~fname ~mig_id with
          | Some st ->
            let inner = Thread_state.innermost st in
            checkb "stopped at requested point" true
              (inner.Thread_state.fname = fname
              && inner.Thread_state.key = (Ir.Liveness.At_mig_point, mig_id))
          | None -> Alcotest.fail (Printf.sprintf "unreached %s#%d" fname mig_id))
        Isa.Arch.all)
    sites

let interp_same_live_values_on_both_isas () =
  (* The same program must materialize identical live values regardless of
     ISA — the precondition for migration being semantics-preserving. *)
  List.iter
    (fun (fname, mig_id) ->
      let value_map arch =
        match Interp.state_at demo arch ~fname ~mig_id with
        | None -> []
        | Some st ->
          List.concat_map
            (fun fr ->
              List.filter_map
                (fun (name, value) ->
                  (* Pointers are address-space specific; compare scalars. *)
                  let per = Compiler.Toolchain.for_arch demo arch in
                  match
                    Compiler.Stackmap.find per.Compiler.Toolchain.stackmaps
                      ~fname:fr.Thread_state.fname ~key:fr.Thread_state.key
                  with
                  | Some entry -> begin
                    match List.assoc_opt name entry.Compiler.Stackmap.live with
                    | Some tl when not (Ir.Ty.is_pointer tl.Compiler.Stackmap.ty)
                      ->
                      Some (fr.Thread_state.fname ^ "." ^ name, value)
                    | Some _ | None -> None
                  end
                  | None -> None)
                (Interp.live_values demo st fr))
            st.Thread_state.frames
      in
      Alcotest.check
        Alcotest.(list (pair string (array int64)))
        "scalar live values identical"
        (value_map Isa.Arch.Arm64) (value_map Isa.Arch.X86_64))
    (Interp.reachable_mig_sites demo)

let interp_frame_chain_shape () =
  (* Stopping inside leaf gives main -> mid -> leaf. *)
  let leaf_site =
    List.find
      (fun (fname, _) -> fname = "leaf")
      (Interp.reachable_mig_sites demo)
  in
  let fname, mig_id = leaf_site in
  match Interp.state_at demo Isa.Arch.X86_64 ~fname ~mig_id with
  | None -> Alcotest.fail "leaf site unreached"
  | Some st ->
    Alcotest.check
      Alcotest.(list string)
      "call chain" [ "leaf"; "mid"; "main" ]
      (List.map (fun f -> f.Thread_state.fname) st.Thread_state.frames);
    (* Frames are laid out downward. *)
    let fps = List.map (fun f -> f.Thread_state.fp) st.Thread_state.frames in
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a < b && decreasing rest
      | _ -> true
    in
    checkb "stack grows down" true (decreasing fps)

let interp_pointer_locals_point_into_stack () =
  let fname, mig_id =
    List.find (fun (f, _) -> f = "leaf") (Interp.reachable_mig_sites demo)
  in
  match Interp.state_at demo Isa.Arch.Arm64 ~fname ~mig_id with
  | None -> Alcotest.fail "unreached"
  | Some st ->
    let mid_frame = Thread_state.frame_of_name st "mid" in
    let live = Interp.live_values demo st mid_frame in
    let bp = (List.assoc "bp" live).(0) in
    checkb "bp targets the stack" true
      (Stack_mem.contains st.Thread_state.stack (Int64.to_int bp));
    let gp = (List.assoc "gp" live).(0) in
    checki "gp targets the global" (Compiler.Toolchain.symbol_address demo "table")
      (Int64.to_int gp)

(* --- Transform ----------------------------------------------------------------- *)

let transform_all_sites_verify () =
  List.iter
    (fun arch ->
      List.iter
        (fun (fname, mig_id) ->
          match Interp.state_at demo arch ~fname ~mig_id with
          | None -> ()
          | Some st -> begin
            match Transform.transform demo st with
            | Error e -> Alcotest.fail e
            | Ok (dst, cost) ->
              checkb "arch flipped" true
                (dst.Thread_state.arch = Isa.Arch.other arch);
              checkb "positive latency" true (cost.Transform.latency_s > 0.0);
              checki "frame count preserved" (Thread_state.depth st)
                (Thread_state.depth dst);
              (match Transform.verify demo st dst with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("verify: " ^ e))
          end)
        (Interp.reachable_mig_sites demo))
    Isa.Arch.all

let transform_round_trip () =
  (* A -> B -> A must reproduce the original live state. *)
  List.iter
    (fun (fname, mig_id) ->
      match Interp.state_at demo Isa.Arch.X86_64 ~fname ~mig_id with
      | None -> ()
      | Some src -> begin
        match Transform.transform demo src with
        | Error e -> Alcotest.fail e
        | Ok (mid_state, _) -> begin
          match Transform.transform demo mid_state with
          | Error e -> Alcotest.fail ("second hop: " ^ e)
          | Ok (back, _) -> begin
            match Transform.verify demo src back with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("roundtrip: " ^ e)
          end
        end
      end)
    (Interp.reachable_mig_sites demo)

let transform_uses_other_stack_half () =
  let fname, mig_id = List.hd (Interp.reachable_mig_sites demo) in
  match Interp.state_at demo Isa.Arch.X86_64 ~fname ~mig_id with
  | None -> Alcotest.fail "unreached"
  | Some src -> begin
    match Transform.transform demo src with
    | Error e -> Alcotest.fail e
    | Ok (dst, _) ->
      checkb "different halves" true
        (Stack_mem.lo src.Thread_state.active <> Stack_mem.lo dst.Thread_state.active);
      List.iter
        (fun fr ->
          checkb "dest frames in dest half" true
            (Stack_mem.contains dst.Thread_state.active fr.Thread_state.fp))
        dst.Thread_state.frames
  end

let transform_rejects_non_mig_point () =
  let st = Thread_state.create Isa.Arch.X86_64 in
  st.Thread_state.frames <-
    [ { Thread_state.fname = "main"; key = (Ir.Liveness.At_call, 0);
        fp = Thread_state.stack_base + 1024; sp = Thread_state.stack_base + 512 } ];
  checkb "rejected" true
    (match Transform.transform demo st with Error _ -> true | Ok _ -> false)

let transform_registers_updated () =
  let fname, mig_id =
    List.find (fun (f, _) -> f = "leaf") (Interp.reachable_mig_sites demo)
  in
  match Interp.state_at demo Isa.Arch.Arm64 ~fname ~mig_id with
  | None -> Alcotest.fail "unreached"
  | Some src -> begin
    match Transform.transform demo src with
    | Error e -> Alcotest.fail e
    | Ok (dst, _) ->
      let inner = Thread_state.innermost dst in
      checki "FP points at innermost dest frame" inner.Thread_state.fp
        (Regfile.get_fp dst.Thread_state.regs);
      checki "SP below FP" inner.Thread_state.sp
        (Regfile.get_sp dst.Thread_state.regs);
      let base_of n = Compiler.Toolchain.symbol_address demo n in
      checki "PC re-encoded for destination ISA"
        (Ra_encoding.encode Isa.Arch.X86_64 ~base_of ~fname:"leaf"
           ~key:(Ir.Liveness.At_mig_point, mig_id))
        (Int64.to_int (Regfile.pc dst.Thread_state.regs))
  end

let transform_latency_scales_with_frames () =
  (* Deeper stacks cost more. *)
  let lat_of fname =
    let _, mig_id =
      List.find (fun (f, _) -> f = fname) (Interp.reachable_mig_sites demo)
    in
    match Interp.state_at demo Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> 0.0
    | Some st -> begin
      match Transform.transform demo st with
      | Ok (_, c) -> c.Transform.latency_s
      | Error _ -> 0.0
    end
  in
  checkb "leaf (3 frames) > main (1 frame)" true (lat_of "leaf" > lat_of "main")

let transform_arm_slower_than_x86 () =
  let med arch =
    let xs =
      List.filter_map
        (fun (fname, mig_id) ->
          match Interp.state_at demo arch ~fname ~mig_id with
          | None -> None
          | Some st -> begin
            match Transform.transform demo st with
            | Ok (_, c) -> Some c.Transform.latency_s
            | Error _ -> None
          end)
        (Interp.reachable_mig_sites demo)
    in
    (Sim.Stats.summarize xs).Sim.Stats.median
  in
  let a = med Isa.Arch.Arm64 and x = med Isa.Arch.X86_64 in
  checkb "ARM ~2x slower (paper Fig. 10)" true (a > 1.5 *. x && a < 3.0 *. x)

(* --- SIMD (paper Section 5.4 future work) -------------------------------- *)

(* A program whose hot function keeps a V128 accumulator live across
   calls: on ARM64 it wins a callee-saved NEON register (v8), on x86-64
   the SysV ABI has no callee-saved vector registers so it must live in a
   16-byte stack slot. *)
let simd_prog =
  let leaf =
    make_func ~name:"sleaf" ~params:[]
      ~body:[ Def (v "t" Ir.Ty.I64); w 10; Use "t" ]
  in
  let kernel =
    make_func ~name:"skernel" ~params:[]
      ~body:
        [
          Def (v "acc" Ir.Ty.V128);
          Loop
            {
              trips = 4;
              body =
                [ w 50; Call { site_id = 0; callee = "sleaf"; args = [] };
                  Use "acc" ];
            };
          Use "acc";
        ]
  in
  let main =
    make_func ~name:"main" ~params:[]
      ~body:[ Call { site_id = 0; callee = "skernel"; args = [] } ]
  in
  make ~name:"simd" ~funcs:[ main; kernel; leaf ] ~globals:[] ~entry:"main"

let simd = Compiler.Toolchain.compile simd_prog

let simd_register_asymmetry () =
  let loc arch =
    Compiler.Backend.location_of
      (Compiler.Toolchain.frame_of (Compiler.Toolchain.for_arch simd arch)
         "skernel")
      "acc"
  in
  (match loc Isa.Arch.Arm64 with
  | Compiler.Backend.In_register r ->
    checkb "NEON callee-saved register" true (Isa.Register.is_vector r)
  | Compiler.Backend.In_slot _ ->
    Alcotest.fail "expected acc in a NEON register on ARM64");
  match loc Isa.Arch.X86_64 with
  | Compiler.Backend.In_slot off ->
    checki "16-aligned vector slot" 0 (off mod 16)
  | Compiler.Backend.In_register _ ->
    Alcotest.fail "x86-64 SysV has no callee-saved vector registers"

let simd_value_migrates_intact () =
  (* The V128 accumulator survives migration in both directions: out of a
     NEON register into an x86 stack slot, and back. *)
  List.iter
    (fun arch ->
      List.iter
        (fun (fname, mig_id) ->
          match Interp.state_at simd arch ~fname ~mig_id with
          | None -> ()
          | Some st -> begin
            match Transform.transform simd st with
            | Error e -> Alcotest.fail e
            | Ok (dst, _) -> begin
              match Transform.verify simd st dst with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("simd verify: " ^ e)
            end
          end)
        (Interp.reachable_mig_sites simd))
    Isa.Arch.all

(* The accumulator is live at the loop-interior migration points, not at
   skernel's entry/exit checks: scan for a site where it is. *)
let acc_live_site arch =
  List.find_map
    (fun (fname, mig_id) ->
      if fname <> "skernel" then None
      else
        match Interp.state_at simd arch ~fname ~mig_id with
        | None -> None
        | Some st ->
          let frame = Thread_state.frame_of_name st "skernel" in
          (match List.assoc_opt "acc" (Interp.live_values simd st frame) with
          | Some acc -> Some (st, acc)
          | None -> None))
    (Interp.reachable_mig_sites simd)

let simd_lanes_distinct () =
  match acc_live_site Isa.Arch.Arm64 with
  | None -> Alcotest.fail "no site with acc live"
  | Some (_, acc) ->
    checki "two lanes" 2 (Array.length acc);
    checkb "lanes differ (real 128-bit payload)" true (acc.(0) <> acc.(1))

let simd_costs_more_lanes () =
  (* The cost model charges per 64-bit lane copied. *)
  match acc_live_site Isa.Arch.X86_64 with
  | None -> Alcotest.fail "no site with acc live"
  | Some (st, _) -> begin
    match Transform.transform simd st with
    | Error e -> Alcotest.fail e
    | Ok (_, cost) ->
      checkb "counts both lanes" true (cost.Transform.values_copied >= 2)
  end

(* --- property: random programs migrate at every site, both ways, and
   round-trip ------------------------------------------------------------- *)

let transform_random_props =
  QCheck.Test.make
    ~name:"random programs: transform verifies at every site on both ISAs"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = Gen.random_program seed in
      let tc = Compiler.Toolchain.compile ~budget:1_000_000 prog in
      let sites = Interp.reachable_mig_sites tc in
      List.for_all
        (fun arch ->
          List.for_all
            (fun (fname, mig_id) ->
              match Interp.state_at tc arch ~fname ~mig_id with
              | None -> true
              | Some st -> begin
                match Transform.transform tc st with
                | Error _ -> false
                | Ok (dst, _) -> begin
                  match Transform.verify tc st dst with
                  | Ok () -> begin
                    match Transform.transform tc dst with
                    | Error _ -> false
                    | Ok (back, _) -> Transform.verify tc st back = Ok ()
                  end
                  | Error _ -> false
                end
              end)
            sites)
        Isa.Arch.all)

let suite =
  [
    ("stack memory read/write", `Quick, stack_mem_rw);
    ("stack memory bounds", `Quick, stack_mem_bounds);
    ("stack memory halves", `Quick, stack_mem_halves);
    ("register file read/write", `Quick, regfile_rw);
    ("register file ISA check", `Quick, regfile_wrong_isa);
    ("return-address encode/decode roundtrip", `Quick, ra_roundtrip);
    ("return-address offsets differ per ISA", `Quick, ra_offsets_differ_across_isas);
    ("interp completes with balanced frames", `Quick, interp_completes_balanced);
    ("interp reaches every migration point", `Quick, interp_reaches_all_sites);
    ("interp cross-ISA value determinism", `Quick,
     interp_same_live_values_on_both_isas);
    ("interp frame chain shape", `Quick, interp_frame_chain_shape);
    ("interp pointer locals resolved", `Quick, interp_pointer_locals_point_into_stack);
    ("transform verifies at every site", `Quick, transform_all_sites_verify);
    ("transform round trip A->B->A", `Quick, transform_round_trip);
    ("transform writes the other stack half", `Quick, transform_uses_other_stack_half);
    ("transform rejects non-migration-point", `Quick, transform_rejects_non_mig_point);
    ("transform r_AB register mapping", `Quick, transform_registers_updated);
    ("transform latency scales with depth", `Quick,
     transform_latency_scales_with_frames);
    ("transform ARM ~2x slower than x86", `Quick, transform_arm_slower_than_x86);
    ("SIMD: NEON register vs x86 slot asymmetry", `Quick, simd_register_asymmetry);
    ("SIMD: V128 values migrate intact", `Quick, simd_value_migrates_intact);
    ("SIMD: lanes carry distinct payloads", `Quick, simd_lanes_distinct);
    ("SIMD: cost counts lanes", `Quick, simd_costs_more_lanes);
    QCheck_alcotest.to_alcotest transform_random_props;
  ]
