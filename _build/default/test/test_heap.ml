let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let make () = Memsys.Heap.create ~base:0x1000 ~bytes:4096

let malloc_basic () =
  let h = make () in
  match Memsys.Heap.malloc h 100 with
  | None -> Alcotest.fail "allocation failed"
  | Some p ->
    checkb "inside the region" true (p >= 0x1000 && p < 0x1000 + 4096);
    checki "16-aligned" 0 (p mod 16);
    checkb "payload accounted" true (Memsys.Heap.allocated_bytes h >= 100);
    checkb "invariants" true (Memsys.Heap.check_invariants h = Ok ())

let allocations_disjoint () =
  let h = make () in
  let ptrs =
    List.filter_map (fun _ -> Memsys.Heap.malloc h 64) (List.init 20 Fun.id)
  in
  checki "20 allocations" 20 (List.length ptrs);
  let ranges = List.map (fun p -> (p, p + 64)) ptrs |> List.sort compare in
  let rec disjoint = function
    | (_, e) :: ((s, _) :: _ as rest) ->
      checkb "disjoint" true (e <= s);
      disjoint rest
    | _ -> ()
  in
  disjoint ranges

let free_and_reuse () =
  let h = make () in
  let p1 = Option.get (Memsys.Heap.malloc h 64) in
  let _p2 = Option.get (Memsys.Heap.malloc h 64) in
  checkb "free ok" true (Memsys.Heap.free h p1 = Ok ());
  (* First-fit reuses the hole. *)
  let p3 = Option.get (Memsys.Heap.malloc h 64) in
  checki "hole reused" p1 p3

let double_free_rejected () =
  let h = make () in
  let p = Option.get (Memsys.Heap.malloc h 8) in
  checkb "first free ok" true (Memsys.Heap.free h p = Ok ());
  checkb "double free rejected" true
    (match Memsys.Heap.free h p with Error _ -> true | Ok () -> false);
  checkb "wild pointer rejected" true
    (match Memsys.Heap.free h 0x1008 with Error _ -> true | Ok () -> false)

let exhaustion_returns_none () =
  let h = make () in
  checkb "oversized returns None" true (Memsys.Heap.malloc h 8192 = None);
  (* Fill it up. *)
  let rec fill acc =
    match Memsys.Heap.malloc h 240 with
    | Some p -> fill (p :: acc)
    | None -> acc
  in
  let ptrs = fill [] in
  checkb "filled" true (List.length ptrs = 16);
  checkb "then exhausted" true (Memsys.Heap.malloc h 240 = None)

let coalescing_defragments () =
  let h = make () in
  let ptrs =
    List.filter_map (fun _ -> Memsys.Heap.malloc h 240) (List.init 16 Fun.id)
  in
  (* Free alternating blocks: fragmentation appears... *)
  List.iteri
    (fun i p -> if i mod 2 = 0 then ignore (Memsys.Heap.free h p))
    ptrs;
  checkb "fragmented" true (Memsys.Heap.fragmentation h > 0.0);
  (* ...then free the rest: everything coalesces into one block. *)
  List.iteri
    (fun i p -> if i mod 2 = 1 then ignore (Memsys.Heap.free h p))
    ptrs;
  Alcotest.check (Alcotest.float 1e-9) "fully coalesced" 0.0
    (Memsys.Heap.fragmentation h);
  checki "nothing live" 0 (Memsys.Heap.allocated_bytes h);
  checkb "invariants" true (Memsys.Heap.check_invariants h = Ok ())

let heap_random_props =
  QCheck.Test.make ~name:"heap invariants under random malloc/free" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sim.Prng.create seed in
      let h = Memsys.Heap.create ~base:0x4000 ~bytes:65536 in
      let live = ref [] in
      let ok = ref true in
      for _ = 1 to 300 do
        if Sim.Prng.bool rng || !live = [] then begin
          match Memsys.Heap.malloc h (Sim.Prng.int rng 512) with
          | Some p -> live := p :: !live
          | None -> ()
        end
        else begin
          let idx = Sim.Prng.int rng (List.length !live) in
          let p = List.nth !live idx in
          live := List.filteri (fun i _ -> i <> idx) !live;
          if Memsys.Heap.free h p <> Ok () then ok := false
        end;
        if Memsys.Heap.check_invariants h <> Ok () then ok := false
      done;
      !ok
      && List.length (Memsys.Heap.allocations h) = List.length !live)

(* The paper's claim: heap pointers are identical across ISAs and survive
   migration without fixups. *)
let heap_pointer_prog =
  let open Ir.Prog in
  let f =
    make_func ~name:"main" ~params:[]
      ~body:
        [
          Def { vname = "node"; ty = Ir.Ty.Ptr; init = Ptr_to_heap 256 };
          Def { vname = "blob"; ty = Ir.Ty.Ptr; init = Ptr_to_heap 4096 };
          Mig_point 0;
          Use "node"; Use "blob";
        ]
  in
  make ~name:"heapdemo" ~funcs:[ f ] ~globals:[] ~entry:"main"

let heap_pointers_identity_mapped () =
  let tc = Compiler.Toolchain.compile heap_pointer_prog in
  let values arch =
    match Runtime.Interp.state_at tc arch ~fname:"main" ~mig_id:0 with
    | None -> Alcotest.fail "unreached"
    | Some st ->
      let fr = Runtime.Thread_state.innermost st in
      List.map
        (fun (n, (v : int64 array)) -> (n, v.(0)))
        (Runtime.Interp.live_values tc st fr)
  in
  Alcotest.check
    Alcotest.(list (pair string int64))
    "same heap addresses on both ISAs"
    (values Isa.Arch.Arm64) (values Isa.Arch.X86_64);
  (* And they cross a migration bit-for-bit (no fixup). *)
  match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname:"main" ~mig_id:0 with
  | None -> Alcotest.fail "unreached"
  | Some st -> begin
    match Runtime.Transform.transform tc st with
    | Error e -> Alcotest.fail e
    | Ok (dst, cost) ->
      checki "no pointer fixups needed" 0 cost.Runtime.Transform.pointers_fixed;
      let before = Runtime.Interp.live_values tc st (Runtime.Thread_state.innermost st) in
      let after = Runtime.Interp.live_values tc dst (Runtime.Thread_state.innermost dst) in
      checkb "verbatim pointer copy" true (before = after)
  end

let suite =
  [
    ("malloc basics", `Quick, malloc_basic);
    ("allocations disjoint", `Quick, allocations_disjoint);
    ("free and first-fit reuse", `Quick, free_and_reuse);
    ("double free rejected", `Quick, double_free_rejected);
    ("exhaustion returns None", `Quick, exhaustion_returns_none);
    ("coalescing defragments", `Quick, coalescing_defragments);
    QCheck_alcotest.to_alcotest heap_random_props;
    ("heap pointers identity-mapped across ISAs", `Quick,
     heap_pointers_identity_mapped);
  ]
