(* Distributed OS services: replication, fd tables, futexes, namespaces. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checks msg = Alcotest.check Alcotest.string msg

let make_env () =
  let engine = Sim.Engine.create () in
  let bus = Kernel.Message.create engine Machine.Interconnect.dolphin_pxh810 in
  (engine, bus)

(* --- Service ------------------------------------------------------------ *)

let strong_replicates_synchronously () =
  let engine, bus = make_env () in
  let svc =
    Kernel.Service.create engine bus ~name:"s" ~nodes:3
      ~consistency:Kernel.Service.Strong
  in
  let latency = Kernel.Service.set svc ~node:0 ~pid:1 ~key:"k" 42L in
  checkb "strong update pays latency" true (latency > 0.0);
  (* Visible everywhere immediately, no engine run needed. *)
  for node = 0 to 2 do
    checkb "replica sees it" true
      (Kernel.Service.get svc ~node ~pid:1 ~key:"k" = Some 42L)
  done;
  checkb "consistent" true (Kernel.Service.consistent svc ~pid:1)

let eventual_converges_after_delivery () =
  let engine, bus = make_env () in
  let svc =
    Kernel.Service.create engine bus ~name:"s" ~nodes:2
      ~consistency:Kernel.Service.Eventual
  in
  let latency = Kernel.Service.set svc ~node:0 ~pid:1 ~key:"k" 7L in
  checkb "local write free" true (latency = 0.0);
  checkb "remote not yet updated" true
    (Kernel.Service.get svc ~node:1 ~pid:1 ~key:"k" = None);
  checkb "inconsistent before delivery" false
    (Kernel.Service.consistent svc ~pid:1);
  Sim.Engine.run engine;
  checkb "converged" true
    (Kernel.Service.get svc ~node:1 ~pid:1 ~key:"k" = Some 7L);
  checkb "consistent after delivery" true (Kernel.Service.consistent svc ~pid:1)

let service_global_slice () =
  let engine, bus = make_env () in
  let svc =
    Kernel.Service.create engine bus ~name:"s" ~nodes:2
      ~consistency:Kernel.Service.Strong
  in
  ignore (Kernel.Service.set_global svc ~node:1 ~key:"epoch" 3L);
  checkb "kernel-wide state replicated" true
    (Kernel.Service.get_global svc ~node:0 ~key:"epoch" = Some 3L)

let service_drop_process () =
  let engine, bus = make_env () in
  let svc =
    Kernel.Service.create engine bus ~name:"s" ~nodes:2
      ~consistency:Kernel.Service.Strong
  in
  ignore (Kernel.Service.set svc ~node:0 ~pid:9 ~key:"k" 1L);
  Kernel.Service.drop_process svc ~pid:9;
  checkb "gone everywhere" true
    (Kernel.Service.get svc ~node:0 ~pid:9 ~key:"k" = None
    && Kernel.Service.get svc ~node:1 ~pid:9 ~key:"k" = None)

let service_counts_updates () =
  let engine, bus = make_env () in
  let svc =
    Kernel.Service.create engine bus ~name:"s" ~nodes:3
      ~consistency:Kernel.Service.Strong
  in
  ignore (Kernel.Service.set svc ~node:0 ~pid:1 ~key:"a" 1L);
  ignore (Kernel.Service.set svc ~node:0 ~pid:1 ~key:"b" 2L);
  checki "two updates x two remote replicas" 4 (Kernel.Service.updates_sent svc)

(* --- Fdtable ------------------------------------------------------------- *)

let fd_survives_migration () =
  let engine, bus = make_env () in
  let fdt = Kernel.Fdtable.create engine bus ~nodes:2 in
  let fd, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:1 ~path:"/data/input" ~flags:0 in
  checki "first fd is 3" 3 fd;
  ignore (Kernel.Fdtable.seek fdt ~node:0 ~pid:1 fd ~offset:8192);
  (* The thread migrates to kernel 1: same descriptor, same offset. *)
  (match Kernel.Fdtable.lookup fdt ~node:1 ~pid:1 fd with
  | Some e ->
    checks "path" "/data/input" e.Kernel.Fdtable.path;
    checki "offset followed" 8192 e.Kernel.Fdtable.offset
  | None -> Alcotest.fail "fd not visible on destination kernel");
  checkb "table consistent" true (Kernel.Fdtable.consistent fdt ~pid:1)

let fd_alloc_lowest_free () =
  let engine, bus = make_env () in
  let fdt = Kernel.Fdtable.create engine bus ~nodes:2 in
  let a, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:1 ~path:"/a" ~flags:0 in
  let b, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:1 ~path:"/b" ~flags:0 in
  checki "sequential" (a + 1) b;
  (match Kernel.Fdtable.close fdt ~node:0 ~pid:1 a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let c, _ = Kernel.Fdtable.openfile fdt ~node:1 ~pid:1 ~path:"/c" ~flags:0 in
  checki "hole reused (from the other kernel!)" a c

let fd_dup_and_errors () =
  let engine, bus = make_env () in
  let fdt = Kernel.Fdtable.create engine bus ~nodes:2 in
  let fd, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:1 ~path:"/x" ~flags:1 in
  (match Kernel.Fdtable.dup fdt ~node:0 ~pid:1 fd with
  | Ok (nfd, _) ->
    checkb "dup shares path" true
      (match Kernel.Fdtable.lookup fdt ~node:1 ~pid:1 nfd with
      | Some e -> e.Kernel.Fdtable.path = "/x"
      | None -> false)
  | Error e -> Alcotest.fail e);
  checkb "close of closed fd fails" true
    (match Kernel.Fdtable.close fdt ~node:0 ~pid:1 99 with
    | Error _ -> true
    | Ok _ -> false);
  checki "three open fds" 2
    (List.length (Kernel.Fdtable.fds fdt ~node:0 ~pid:1))

let fd_tables_per_process () =
  let engine, bus = make_env () in
  let fdt = Kernel.Fdtable.create engine bus ~nodes:2 in
  let a, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:1 ~path:"/p1" ~flags:0 in
  let b, _ = Kernel.Fdtable.openfile fdt ~node:0 ~pid:2 ~path:"/p2" ~flags:0 in
  checki "separate numbering" a b;
  checkb "no cross-process leak" true
    (match Kernel.Fdtable.lookup fdt ~node:0 ~pid:2 b with
    | Some e -> e.Kernel.Fdtable.path = "/p2"
    | None -> false)

(* --- Futex ---------------------------------------------------------------- *)

let futex_local_wake () =
  let engine, bus = make_env () in
  let fx = Kernel.Futex.create engine bus in
  let woken = ref [] in
  Kernel.Futex.wait fx ~addr:0x1000 ~node:0 ~tid:1 ~on_wake:(fun () ->
      woken := 1 :: !woken);
  Kernel.Futex.wait fx ~addr:0x1000 ~node:0 ~tid:2 ~on_wake:(fun () ->
      woken := 2 :: !woken);
  checki "both parked" 2 (List.length (Kernel.Futex.waiters fx ~addr:0x1000));
  checki "wake 1" 1 (Kernel.Futex.wake fx ~addr:0x1000 ~node:0 ~count:1);
  Sim.Engine.run engine;
  Alcotest.check Alcotest.(list int) "FIFO order" [ 1 ] (List.rev !woken);
  checkb "tid 2 still parked" true (Kernel.Futex.is_waiting fx ~tid:2)

let futex_cross_kernel_wake_pays_latency () =
  let engine, bus = make_env () in
  let fx = Kernel.Futex.create engine bus in
  let woke_at = ref (-1.0) in
  Kernel.Futex.wait fx ~addr:0x2000 ~node:1 ~tid:7 ~on_wake:(fun () ->
      woke_at := Sim.Engine.now engine);
  checki "woken" 1 (Kernel.Futex.wake fx ~addr:0x2000 ~node:0 ~count:8);
  Sim.Engine.run engine;
  checkb "remote wake has latency" true (!woke_at > 0.0);
  checki "message crossed the interconnect" 1
    (Kernel.Message.sent bus Kernel.Message.Service_update)

let futex_wake_empty () =
  let engine, bus = make_env () in
  let fx = Kernel.Futex.create engine bus in
  checki "nothing to wake" 0 (Kernel.Futex.wake fx ~addr:0x3000 ~node:0 ~count:1)

(* --- Namespace ------------------------------------------------------------ *)

let namespace_hostname_and_mounts () =
  let ns = Kernel.Namespace.create_set ~name:"web-1" in
  Kernel.Namespace.set_hostname ns "web-1.internal";
  Kernel.Namespace.add_mount ns ~source:"/var/ctr/web-1/root" ~target:"/";
  Kernel.Namespace.add_mount ns ~source:"/ssd/cache" ~target:"/cache";
  checks "hostname" "web-1.internal" (Kernel.Namespace.hostname ns);
  checks "longest prefix wins" "/ssd/cache/objs"
    (Kernel.Namespace.resolve ns "/cache/objs");
  checks "root mount" "/var/ctr/web-1/root/etc/hosts"
    (Kernel.Namespace.resolve ns "/etc/hosts");
  checkb "duplicate mount rejected" true
    (try
       Kernel.Namespace.add_mount ns ~source:"/x" ~target:"/cache";
       false
     with Invalid_argument _ -> true)

let namespace_pid_mapping () =
  let ns = Kernel.Namespace.create_set ~name:"c" in
  let l1 = Kernel.Namespace.register_pid ns ~global_pid:4242 in
  let l2 = Kernel.Namespace.register_pid ns ~global_pid:4243 in
  checki "init is 1" 1 l1;
  checki "second is 2" 2 l2;
  checki "idempotent" 1 (Kernel.Namespace.register_pid ns ~global_pid:4242);
  Alcotest.check Alcotest.(option int) "reverse map" (Some 4243)
    (Kernel.Namespace.global_pid ns ~local_pid:2);
  Alcotest.check Alcotest.(option int) "missing" None
    (Kernel.Namespace.local_pid ns ~global_pid:9)

let namespace_fingerprint_invariant () =
  (* The container view must be reproducible on another kernel: building
     the same namespace set yields the same fingerprint; any divergence
     changes it. *)
  let build () =
    let ns = Kernel.Namespace.create_set ~name:"c" in
    Kernel.Namespace.set_hostname ns "app";
    Kernel.Namespace.add_mount ns ~source:"/real" ~target:"/";
    ignore (Kernel.Namespace.register_pid ns ~global_pid:100);
    ns
  in
  let a = build () and b = build () in
  checki "same view, same fingerprint"
    (Kernel.Namespace.view_fingerprint a)
    (Kernel.Namespace.view_fingerprint b);
  Kernel.Namespace.set_hostname b "other";
  checkb "divergence detected" true
    (Kernel.Namespace.view_fingerprint a <> Kernel.Namespace.view_fingerprint b)

(* --- Syscall boundary ------------------------------------------------------ *)

let syscall_balanced_continuation () =
  let engine, bus = make_env () in
  let sys = Kernel.Syscall.create engine bus ~nodes:2 in
  let cont = Kernel.Continuation.create () in
  (match
     Kernel.Syscall.dispatch sys ~node:0 ~arch:Isa.Arch.X86_64 ~pid:1
       ~continuation:cont (Kernel.Syscall.Open "/etc/conf")
   with
  | Ok (Kernel.Syscall.Fd fd, latency) ->
    checki "fd 3" 3 fd;
    checkb "strong fd table costs messages" true (latency > 0.0)
  | Ok _ -> Alcotest.fail "expected a descriptor"
  | Error e -> Alcotest.fail e);
  checkb "continuation balanced after the call" true
    (Kernel.Continuation.can_migrate cont);
  (* Error paths balance it too. *)
  (match
     Kernel.Syscall.dispatch sys ~node:0 ~arch:Isa.Arch.X86_64 ~pid:1
       ~continuation:cont (Kernel.Syscall.Close 99)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "close of bad fd should fail");
  checkb "balanced after an error" true (Kernel.Continuation.can_migrate cont)

let futex_wait_blocks_migration_end_to_end () =
  let engine, bus = make_env () in
  let sys = Kernel.Syscall.create engine bus ~nodes:2 in
  let cont = Kernel.Continuation.create () in
  let woke = ref false in
  Kernel.Syscall.futex_wait sys ~node:0 ~arch:Isa.Arch.X86_64 ~tid:5
    ~continuation:cont ~addr:0xBEEF ~on_wake:(fun () -> woke := true);
  (* While parked, the thread is inside a kernel service: migration must
     be refused (the paper's service atomicity). *)
  checkb "migration blocked while parked" false
    (Kernel.Continuation.can_migrate cont);
  (* Wake from the other kernel. *)
  (match
     Kernel.Syscall.dispatch sys ~node:1 ~arch:Isa.Arch.Arm64 ~pid:2
       ~continuation:(Kernel.Continuation.create ())
       (Kernel.Syscall.Futex_wake (0xBEEF, 1))
   with
  | Ok (Kernel.Syscall.Woken n, _) -> checki "one woken" 1 n
  | Ok _ | Error _ -> Alcotest.fail "wake failed");
  Sim.Engine.run engine;
  checkb "woken" true !woke;
  checkb "migration allowed after the service exits" true
    (Kernel.Continuation.can_migrate cont)

let suite =
  [
    ("strong service replicates synchronously", `Quick,
     strong_replicates_synchronously);
    ("eventual service converges", `Quick, eventual_converges_after_delivery);
    ("service global slice", `Quick, service_global_slice);
    ("service drops finished processes", `Quick, service_drop_process);
    ("service counts replication traffic", `Quick, service_counts_updates);
    ("fd table survives migration", `Quick, fd_survives_migration);
    ("fd allocation: lowest free, cross-kernel", `Quick, fd_alloc_lowest_free);
    ("fd dup and error paths", `Quick, fd_dup_and_errors);
    ("fd tables are per-process", `Quick, fd_tables_per_process);
    ("futex local FIFO wake", `Quick, futex_local_wake);
    ("futex cross-kernel wake pays latency", `Quick,
     futex_cross_kernel_wake_pays_latency);
    ("futex wake on empty queue", `Quick, futex_wake_empty);
    ("namespace hostname and mounts", `Quick, namespace_hostname_and_mounts);
    ("namespace pid mapping", `Quick, namespace_pid_mapping);
    ("namespace view fingerprint", `Quick, namespace_fingerprint_invariant);
    ("syscalls balance the continuation", `Quick, syscall_balanced_continuation);
    ("futex_wait blocks migration end-to-end", `Quick,
     futex_wait_blocks_migration_end_to_end);
  ]
