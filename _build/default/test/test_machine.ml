let checkb msg = Alcotest.check Alcotest.bool msg
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let power_affine () =
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  checkf "idle at 0" m.Machine.Power.cpu_idle_w
    (Machine.Power.cpu_power m ~utilization:0.0);
  checkf "max at 1" m.Machine.Power.cpu_max_w
    (Machine.Power.cpu_power m ~utilization:1.0);
  let mid = Machine.Power.cpu_power m ~utilization:0.5 in
  checkf "midpoint" ((m.Machine.Power.cpu_idle_w +. m.Machine.Power.cpu_max_w) /. 2.0) mid

let power_clamped () =
  let m = Machine.Server.xgene1.Machine.Server.power in
  checkf "clamp low" (Machine.Power.cpu_power m ~utilization:0.0)
    (Machine.Power.cpu_power m ~utilization:(-1.0));
  checkf "clamp high" (Machine.Power.cpu_power m ~utilization:1.0)
    (Machine.Power.cpu_power m ~utilization:2.0)

let power_system_includes_platform () =
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  checkf "platform adder" m.Machine.Power.platform_w
    (Machine.Power.system_power m ~utilization:0.3
    -. Machine.Power.cpu_power m ~utilization:0.3)

let power_figure11_envelope () =
  (* Figure 11's axes: x86 system power peaks above 100 W, ARM near 80 W. *)
  let x = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  let a = Machine.Server.xgene1.Machine.Server.power in
  checkb "x86 peak 100-130 W" true
    (let p = Machine.Power.system_power x ~utilization:1.0 in
     p > 100.0 && p < 130.0);
  checkb "arm peak 60-90 W" true
    (let p = Machine.Power.system_power a ~utilization:1.0 in
     p > 60.0 && p < 90.0)

let sensor_samples_at_rate () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  Machine.Power.Sensor.attach engine trace m ~name:"n" ~hz:100.0 ~until:0.5
    ~utilization:(fun () -> 0.5);
  Sim.Engine.run engine;
  let samples = Sim.Trace.series trace "n.cpu_w" in
  checkb "~50 samples at 100 Hz over 0.5 s" true
    (List.length samples >= 50 && List.length samples <= 52);
  checkb "load series too" true (Sim.Trace.series trace "n.load" <> [])

let mcpat_projection () =
  let m = Machine.Server.xgene1.Machine.Server.power in
  let p = Machine.Mcpat.project_finfet m in
  checkf "cpu scaled by 1/10" (m.Machine.Power.cpu_max_w /. 10.0)
    p.Machine.Power.cpu_max_w;
  (* McPAT models the processor: board power is untouched. *)
  checkf "platform unchanged" m.Machine.Power.platform_w
    p.Machine.Power.platform_w

let interconnect_transfer_times () =
  let d = Machine.Interconnect.dolphin_pxh810 in
  let small = Machine.Interconnect.transfer_time d ~bytes:64 in
  let page = Machine.Interconnect.transfer_time d ~bytes:4096 in
  checkb "latency floor" true (small >= d.Machine.Interconnect.latency_s);
  checkb "bigger takes longer" true (page > small);
  (* 64 Gb/s: a 4 KiB page's serialization is ~0.5 us. *)
  checkb "page under 3us" true (page < 3e-6)

let interconnect_ethernet_slower () =
  let d = Machine.Interconnect.dolphin_pxh810 in
  let e = Machine.Interconnect.ethernet_10g in
  checkb "pcie faster" true
    (Machine.Interconnect.transfer_time d ~bytes:4096
    < Machine.Interconnect.transfer_time e ~bytes:4096)

let machine_specs_match_paper () =
  let x = Machine.Server.xeon_e5_1650_v2 in
  let a = Machine.Server.xgene1 in
  Alcotest.check Alcotest.int "xeon 6 cores" 6 x.Machine.Server.cores;
  Alcotest.check Alcotest.int "x-gene 8 cores" 8 a.Machine.Server.cores;
  checkf "xeon 3.5 GHz" 3.5e9 x.Machine.Server.cost.Isa.Cost_model.frequency_hz;
  checkf "x-gene 2.4 GHz" 2.4e9 a.Machine.Server.cost.Isa.Cost_model.frequency_hz;
  checkb "xeon more peak mips" true
    (Machine.Server.peak_mips x Isa.Cost_model.Compute
    > Machine.Server.peak_mips a Isa.Cost_model.Compute)

let suite =
  [
    ("power affine in utilization", `Quick, power_affine);
    ("power clamps utilization", `Quick, power_clamped);
    ("system power includes platform", `Quick, power_system_includes_platform);
    ("power envelopes match Figure 11", `Quick, power_figure11_envelope);
    ("sensor samples at 100 Hz", `Quick, sensor_samples_at_rate);
    ("mcpat finfet projection", `Quick, mcpat_projection);
    ("interconnect transfer times", `Quick, interconnect_transfer_times);
    ("pcie beats ethernet", `Quick, interconnect_ethernet_slower);
    ("machine specs match the paper", `Quick, machine_specs_match_paper);
  ]
