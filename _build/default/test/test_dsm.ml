let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checkf msg = Alcotest.check (Alcotest.float 1e-12) msg

let make_dsm () =
  Dsm.Hdsm.create ~nodes:2 ~interconnect:Machine.Interconnect.dolphin_pxh810 ()

let initial_exclusive () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkb "owner exclusive" true (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Exclusive);
  checkb "other invalid" true (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Invalid);
  checki "owner" 0 (Dsm.Hdsm.owner d ~page:1)

let local_hits_free () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkf "local read free" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:1 ~write:false);
  checkf "local write free" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:1 ~write:true);
  checki "two hits" 2 (Dsm.Hdsm.stats d).Dsm.Hdsm.local_hits

let read_miss_fetches_shared () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false in
  checkb "remote fetch costs" true (lat > 0.0);
  checkb "now shared at both" true
    (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Shared
    && Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Shared);
  checkf "second read local" 0.0 (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false)

let write_invalidates () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  ignore (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false);
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  checkb "invalidation costs" true (lat > 0.0);
  checkb "writer exclusive" true
    (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Exclusive);
  checkb "old owner invalidated" true
    (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Invalid);
  checki "ownership moved" 1 (Dsm.Hdsm.owner d ~page:1);
  checki "one invalidation" 1 (Dsm.Hdsm.stats d).Dsm.Hdsm.invalidations

let write_miss_fetch_and_invalidate () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  (* Fetch + invalidate the old copy. *)
  checkb "costs both" true (lat > 0.0);
  checkb "writer exclusive" true
    (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Exclusive)

let aliased_pages_never_move () =
  let d = make_dsm () in
  Dsm.Hdsm.register_alias d ~page:9;
  checkf "free everywhere read" 0.0 (Dsm.Hdsm.access d ~node:1 ~page:9 ~write:false);
  checkf "free everywhere exec" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:9 ~write:false);
  checkb "always shared" true (Dsm.Hdsm.state_of d ~page:9 0 = Dsm.Hdsm.Shared);
  checkb "not counted as owned" true (Dsm.Hdsm.pages_owned_by d 0 = [])

let unknown_page_rejected () =
  let d = make_dsm () in
  checkb "raises" true
    (try
       ignore (Dsm.Hdsm.access d ~node:0 ~page:404 ~write:false);
       false
     with Invalid_argument _ -> true)

let unknown_node_rejected () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkb "raises" true
    (try
       ignore (Dsm.Hdsm.access d ~node:7 ~page:1 ~write:false);
       false
     with Invalid_argument _ -> true)

let residual_and_drain () =
  let d = make_dsm () in
  for p = 0 to 9 do
    Dsm.Hdsm.register_page d ~page:p ~owner:0
  done;
  checki "10 residual" 10 (Dsm.Hdsm.residual_pages d ~home:0);
  let lat = Dsm.Hdsm.drain d ~from_:0 ~to_:1 in
  checkb "drain costs" true (lat > 0.0);
  checki "none left" 0 (Dsm.Hdsm.residual_pages d ~home:0);
  checki "all at new home" 10 (Dsm.Hdsm.residual_pages d ~home:1)

let drain_pages_partial () =
  let d = make_dsm () in
  for p = 0 to 9 do
    Dsm.Hdsm.register_page d ~page:p ~owner:0
  done;
  let lat = Dsm.Hdsm.drain_pages d ~pages:[ 0; 1; 2 ] ~to_:1 in
  checkb "costs" true (lat > 0.0);
  checki "7 residual" 7 (Dsm.Hdsm.residual_pages d ~home:0);
  (* Draining pages already at the destination is free. *)
  checkf "idempotent free" 0.0 (Dsm.Hdsm.drain_pages d ~pages:[ 0; 1; 2 ] ~to_:1)

let page_migration_makes_access_local () =
  (* The hDSM rationale: after migration, accesses are local rather than
     repeatedly remote. *)
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let first = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  let rest =
    List.init 100 (fun _ -> Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true)
  in
  checkb "first access pays" true (first > 0.0);
  checkb "rest free" true (List.for_all (fun l -> l = 0.0) rest)

let stats_bytes_accounted () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  ignore (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false);
  checki "one page of traffic" Memsys.Page.size
    (Dsm.Hdsm.stats d).Dsm.Hdsm.bytes_transferred;
  Dsm.Hdsm.reset_stats d;
  checki "reset" 0 (Dsm.Hdsm.stats d).Dsm.Hdsm.bytes_transferred

(* Invariant: single writer / multiple readers, owner always has a copy. *)
let coherence_random_props =
  QCheck.Test.make ~name:"hDSM invariants under random access interleavings"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sim.Prng.create seed in
      let nodes = 2 + Sim.Prng.int rng 3 in
      let d =
        Dsm.Hdsm.create ~nodes ~interconnect:Machine.Interconnect.dolphin_pxh810
          ()
      in
      let pages = 1 + Sim.Prng.int rng 8 in
      for p = 0 to pages - 1 do
        Dsm.Hdsm.register_page d ~page:p ~owner:(Sim.Prng.int rng nodes)
      done;
      let ok = ref true in
      for _ = 1 to 200 do
        let node = Sim.Prng.int rng nodes in
        let page = Sim.Prng.int rng pages in
        let write = Sim.Prng.bool rng in
        let (_ : float) = Dsm.Hdsm.access d ~node ~page ~write in
        (* After any access: the accessing node holds a valid copy; if it
           wrote, it is the exclusive owner and everyone else is invalid. *)
        let st = Dsm.Hdsm.state_of d ~page node in
        if st = Dsm.Hdsm.Invalid then ok := false;
        if write then begin
          if st <> Dsm.Hdsm.Exclusive then ok := false;
          if Dsm.Hdsm.owner d ~page <> node then ok := false;
          for other = 0 to nodes - 1 do
            if other <> node && Dsm.Hdsm.state_of d ~page other <> Dsm.Hdsm.Invalid
            then ok := false
          done
        end
      done;
      !ok)

let suite =
  [
    ("fresh page exclusive at owner", `Quick, initial_exclusive);
    ("local hits are free", `Quick, local_hits_free);
    ("read miss fetches shared copy", `Quick, read_miss_fetches_shared);
    ("write invalidates other copies", `Quick, write_invalidates);
    ("write miss fetches and invalidates", `Quick, write_miss_fetch_and_invalidate);
    ("aliased text pages never move", `Quick, aliased_pages_never_move);
    ("unknown page rejected", `Quick, unknown_page_rejected);
    ("unknown node rejected", `Quick, unknown_node_rejected);
    ("residual tracking and drain", `Quick, residual_and_drain);
    ("partial drain", `Quick, drain_pages_partial);
    ("page migration localizes access", `Quick, page_migration_makes_access_local);
    ("traffic statistics", `Quick, stats_bytes_accounted);
    QCheck_alcotest.to_alcotest coherence_random_props;
  ]
