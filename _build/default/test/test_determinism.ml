(* Reproducibility: every layer of the system is deterministic, so the
   experiments in EXPERIMENTS.md reproduce bit-for-bit. *)

let checkb msg = Alcotest.check Alcotest.bool msg

let toolchain_deterministic () =
  let compile () =
    Compiler.Toolchain.compile
      (Workload.Programs.program Workload.Spec.FT Workload.Spec.A)
  in
  let a = compile () and b = compile () in
  (* Same migration-point count, same unified addresses, same frames. *)
  Alcotest.check Alcotest.int "points"
    a.Compiler.Toolchain.migration_points b.Compiler.Toolchain.migration_points;
  List.iter
    (fun arch ->
      let la = Binary.Align.layout_for a.Compiler.Toolchain.aligned arch in
      let lb = Binary.Align.layout_for b.Compiler.Toolchain.aligned arch in
      List.iter2
        (fun (pa : Binary.Layout.placed) (pb : Binary.Layout.placed) ->
          checkb "same placement" true
            (pa.Binary.Layout.addr = pb.Binary.Layout.addr
            && pa.Binary.Layout.symbol = pb.Binary.Layout.symbol))
        la.Binary.Layout.placed lb.Binary.Layout.placed;
      let ea = Binary.Elf_bytes.encode (Compiler.Toolchain.for_arch a arch).Compiler.Toolchain.elf in
      let eb = Binary.Elf_bytes.encode (Compiler.Toolchain.for_arch b arch).Compiler.Toolchain.elf in
      Alcotest.check Alcotest.string "identical ELF bytes" ea eb)
    Isa.Arch.all

let interp_deterministic () =
  let tc =
    Compiler.Toolchain.compile
      (Workload.Programs.program Workload.Spec.CG Workload.Spec.A)
  in
  let fname, mig_id = List.hd (Runtime.Interp.reachable_mig_sites tc) in
  let snap () =
    match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> []
    | Some st ->
      List.concat_map
        (fun fr ->
          List.map
            (fun (n, (v : int64 array)) -> (fr.Runtime.Thread_state.fname, n, Array.to_list v))
            (Runtime.Interp.live_values tc st fr))
        st.Runtime.Thread_state.frames
  in
  checkb "identical suspended states" true (snap () = snap ())

let transform_cost_deterministic () =
  let tc =
    Compiler.Toolchain.compile
      (Workload.Programs.program Workload.Spec.MG Workload.Spec.A)
  in
  let latencies () = Hetmig.Het.migration_latencies_us tc Isa.Arch.Arm64 in
  checkb "identical latency distributions" true (latencies () = latencies ())

let emulation_and_padmig_deterministic () =
  let spec = Workload.Spec.spec Workload.Spec.BT Workload.Spec.C in
  checkb "emulation" true
    (Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:8
    = Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads:8);
  let p () =
    Baseline.Padmig.migration_profile spec ~from_:Isa.Arch.X86_64
      ~to_:Isa.Arch.Arm64
  in
  checkb "padmig" true (p () = p ())

let full_experiment_run_deterministic () =
  (* The heaviest path: a dynamic scheduling run end-to-end, twice. *)
  let run () =
    Sched.Scheduler.run Sched.Policy.Dynamic_balanced
      (Sched.Arrival.periodic ~seed:777 ~waves:2 ~max_per_wave:6)
  in
  let a = run () and b = run () in
  checkb "identical makespan" true
    (a.Sched.Scheduler.makespan = b.Sched.Scheduler.makespan);
  checkb "identical energy vector" true
    (a.Sched.Scheduler.energy = b.Sched.Scheduler.energy);
  checkb "identical migrations" true
    (a.Sched.Scheduler.migrations = b.Sched.Scheduler.migrations)

let suite =
  [
    ("toolchain output bit-identical", `Quick, toolchain_deterministic);
    ("interpreter states bit-identical", `Quick, interp_deterministic);
    ("transformation costs bit-identical", `Quick, transform_cost_deterministic);
    ("baselines deterministic", `Quick, emulation_and_padmig_deterministic);
    ("full scheduling run deterministic", `Slow, full_experiment_run_deterministic);
  ]
