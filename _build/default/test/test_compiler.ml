let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

module Astring_contains = struct
  let contains haystack needle =
    let n = String.length haystack and m = String.length needle in
    let rec go i =
      if i + m > n then false
      else if String.sub haystack i m = needle then true
      else go (i + 1)
    in
    go 0
end

open Ir.Prog

let v ?(init = Scalar) vname ty = { vname; ty; init }

let w ?(n = 1000) () =
  Work { instructions = n; category = Isa.Cost_model.Mixed; memory_touched = 0 }

let sample_func =
  make_func ~name:"sample"
    ~params:[ v "p0" Ir.Ty.I64; v "p1" Ir.Ty.F64 ]
    ~body:
      [
        Def (v "a" Ir.Ty.I64);
        Def (v "buf" Ir.Ty.I64);
        Def (v ~init:(Ptr_to_local "buf") "bp" Ir.Ty.Ptr);
        w ();
        Call { site_id = 0; callee = "sample_leaf"; args = [ "a" ] };
        Use "bp"; Use "buf"; Use "p0"; Use "p1";
      ]

let sample_leaf =
  make_func ~name:"sample_leaf" ~params:[ v "x" Ir.Ty.I64 ]
    ~body:[ w (); Use "x" ]

let sample_prog =
  make ~name:"sample" ~funcs:[ sample_func; sample_leaf ]
    ~globals:
      [ Memsys.Symbol.make ~name:"g" ~section:Memsys.Symbol.Data ~size:64
          ~alignment:8 ]
    ~entry:"sample"

(* --- backend ------------------------------------------------------------- *)

let backend_code_sizes_differ () =
  let a = Compiler.Backend.code_size Isa.Arch.Arm64 sample_func in
  let x = Compiler.Backend.code_size Isa.Arch.X86_64 sample_func in
  checkb "positive" true (a > 0 && x > 0);
  checkb "16-aligned" true (a mod 16 = 0 && x mod 16 = 0);
  (* A register-hungry function spills far more on x86, so the code sizes
     must structurally diverge. *)
  let hungry =
    make_func ~name:"hungry" ~params:[]
      ~body:
        (List.init 14 (fun i -> Def (v (Printf.sprintf "h%d" i) Ir.Ty.I64))
        @ List.init 14 (fun i -> Use (Printf.sprintf "h%d" i)))
  in
  checkb "differ across ISAs" true
    (Compiler.Backend.code_size Isa.Arch.Arm64 hungry
    <> Compiler.Backend.code_size Isa.Arch.X86_64 hungry)

let backend_frame_covers_all_locals () =
  List.iter
    (fun arch ->
      let f = Compiler.Backend.frame_layout arch sample_func in
      List.iter
        (fun lv ->
          checkb (lv.vname ^ " located") true
            (List.mem_assoc lv.vname f.Compiler.Backend.locations))
        (locals sample_func))
    Isa.Arch.all

let backend_address_taken_in_slot () =
  (* buf's address is taken: it must live in memory on every ISA. *)
  List.iter
    (fun arch ->
      let f = Compiler.Backend.frame_layout arch sample_func in
      match Compiler.Backend.location_of f "buf" with
      | Compiler.Backend.In_slot _ -> ()
      | Compiler.Backend.In_register _ ->
        Alcotest.fail "address-taken local allocated to a register")
    Isa.Arch.all

let backend_register_homes_are_callee_saved () =
  List.iter
    (fun arch ->
      let f = Compiler.Backend.frame_layout arch sample_func in
      List.iter
        (fun (_, loc) ->
          match loc with
          | Compiler.Backend.In_register r ->
            checkb "callee-saved" true (Isa.Register.is_callee_saved r)
          | Compiler.Backend.In_slot off -> checkb "positive offset" true (off > 0))
        f.Compiler.Backend.locations)
    Isa.Arch.all

let backend_slots_disjoint () =
  List.iter
    (fun arch ->
      let f = Compiler.Backend.frame_layout arch sample_func in
      let slots =
        List.filter_map
          (fun (_, loc) ->
            match loc with
            | Compiler.Backend.In_slot off -> Some off
            | Compiler.Backend.In_register _ -> None)
          f.Compiler.Backend.locations
      in
      checki "slots unique"
        (List.length slots)
        (List.length (List.sort_uniq compare slots));
      (* Slots must not collide with the callee-save area. *)
      let saves = List.length f.Compiler.Backend.callee_saved_used in
      List.iter
        (fun off -> checkb "below save area" true (off > saves * 8))
        slots)
    Isa.Arch.all

let backend_frame_fits () =
  List.iter
    (fun arch ->
      let f = Compiler.Backend.frame_layout arch sample_func in
      let max_off =
        List.fold_left
          (fun acc (_, loc) ->
            match loc with
            | Compiler.Backend.In_slot off -> max acc off
            | Compiler.Backend.In_register _ -> acc)
          0 f.Compiler.Backend.locations
      in
      checkb "frame contains deepest slot" true
        (f.Compiler.Backend.frame_bytes >= max_off);
      checki "frame 16-aligned" 0 (f.Compiler.Backend.frame_bytes mod 16))
    Isa.Arch.all

let backend_x86_fewer_registers () =
  (* Many locals: ARM64's 10 allocatable callee-saved registers vs x86's 5
     must produce more spills on x86. *)
  let many =
    make_func ~name:"many" ~params:[]
      ~body:
        (List.init 12 (fun i -> Def (v (Printf.sprintf "l%d" i) Ir.Ty.I64))
        @ List.init 12 (fun i -> Use (Printf.sprintf "l%d" i)))
  in
  let count_spills arch =
    let f = Compiler.Backend.frame_layout arch many in
    List.length
      (List.filter
         (fun (_, l) ->
           match l with
           | Compiler.Backend.In_slot _ -> true
           | Compiler.Backend.In_register _ -> false)
         f.Compiler.Backend.locations)
  in
  checkb "x86 spills more" true
    (count_spills Isa.Arch.X86_64 > count_spills Isa.Arch.Arm64)

(* --- stackmaps ------------------------------------------------------------ *)

let stackmap_entries_per_site () =
  let frame = Compiler.Backend.frame_layout Isa.Arch.Arm64 sample_func in
  let entries = Compiler.Stackmap.generate sample_func frame in
  checki "one entry per equivalence point" 1 (List.length entries);
  let e = List.hd entries in
  checkb "live sorted" true
    (let names = List.map fst e.Compiler.Stackmap.live in
     names = List.sort compare names)

let stackmap_common_sites_agree () =
  let fa = Compiler.Backend.frame_layout Isa.Arch.Arm64 sample_func in
  let fx = Compiler.Backend.frame_layout Isa.Arch.X86_64 sample_func in
  let ea = Compiler.Stackmap.generate sample_func fa in
  let ex = Compiler.Stackmap.generate sample_func fx in
  let pairs = Compiler.Stackmap.common_sites ea ex in
  checki "paired" (List.length ea) (List.length pairs);
  List.iter
    (fun ((a : Compiler.Stackmap.entry), (b : Compiler.Stackmap.entry)) ->
      Alcotest.check
        Alcotest.(list string)
        "same live names"
        (List.map fst a.Compiler.Stackmap.live)
        (List.map fst b.Compiler.Stackmap.live))
    pairs

(* --- unwind ----------------------------------------------------------------- *)

let unwind_rules () =
  List.iter
    (fun arch ->
      let frame = Compiler.Backend.frame_layout arch sample_func in
      let rule = Compiler.Unwind.of_frame frame in
      checkb "RA at FP+8 once spilled" true
        (rule.Compiler.Unwind.ra = Compiler.Unwind.Ra_at_offset 8);
      checki "one save slot per used callee-saved register"
        (List.length frame.Compiler.Backend.callee_saved_used)
        (List.length rule.Compiler.Unwind.saved_registers);
      (* Save slots are distinct and positive. *)
      let offs = List.map snd rule.Compiler.Unwind.saved_registers in
      checki "distinct" (List.length offs)
        (List.length (List.sort_uniq compare offs)))
    Isa.Arch.all

let unwind_saved_offset_lookup () =
  let frame = Compiler.Backend.frame_layout Isa.Arch.Arm64 sample_func in
  let rule = Compiler.Unwind.of_frame frame in
  match frame.Compiler.Backend.callee_saved_used with
  | [] -> ()
  | r :: _ ->
    checkb "found" true (Compiler.Unwind.saved_offset rule r <> None);
    let unused = Isa.Register.by_name Isa.Arch.Arm64 "x28" in
    if
      not
        (List.exists
           (Isa.Register.equal unused)
           frame.Compiler.Backend.callee_saved_used)
    then checkb "absent for unused" true (Compiler.Unwind.saved_offset rule unused = None)

(* --- DWARF CFI ------------------------------------------------------------ *)

let dwarf_cie_per_isa () =
  let arm = Compiler.Dwarf.render_cie Isa.Arch.Arm64 in
  let x86 = Compiler.Dwarf.render_cie Isa.Arch.X86_64 in
  checkb "arm RA column 30 (x30)" true
    (String.length arm > 0
    && Astring_contains.contains arm "Return address column: 30");
  checkb "x86 RA column 16" true
    (Astring_contains.contains x86 "Return address column: 16")

let dwarf_fde_roundtrip () =
  List.iter
    (fun arch ->
      let frame = Compiler.Backend.frame_layout arch sample_func in
      let rule = Compiler.Unwind.of_frame frame in
      let fde = Compiler.Dwarf.render_fde rule ~code_base:0x401000 ~code_size:256 in
      let parsed = Compiler.Dwarf.parse_fde_offsets fde in
      (* Every callee-saved register's save slot must round-trip. *)
      List.iter
        (fun ((r : Isa.Register.t), off) ->
          Alcotest.check
            Alcotest.(option int)
            (r.Isa.Register.name ^ " offset parses back")
            (Some off)
            (List.assoc_opt r.Isa.Register.name parsed))
        rule.Compiler.Unwind.saved_registers)
    Isa.Arch.all

let dwarf_debug_frame_full () =
  let tc = Compiler.Toolchain.compile sample_prog in
  List.iter
    (fun arch ->
      let text = Hetmig.Het.debug_frame tc arch in
      checkb "has CIE" true (Astring_contains.contains text "CIE");
      checkb "one FDE per function" true
        (Astring_contains.contains text "FDE sample "
        && Astring_contains.contains text "FDE sample_leaf "))
    Isa.Arch.all

(* --- profiler ----------------------------------------------------------------- *)

let profiler_straight_line () =
  let f =
    make_func ~name:"f" ~params:[]
      ~body:[ w ~n:100 (); Call { site_id = 0; callee = "g"; args = [] }; w ~n:50 () ]
  in
  Alcotest.check
    Alcotest.(list (float 1e-9))
    "two gaps" [ 100.0; 50.0 ] (Compiler.Profiler.gaps f)

let profiler_loop_no_ep_melts () =
  let f =
    make_func ~name:"f" ~params:[]
      ~body:
        [ w ~n:10 (); Loop { trips = 5; body = [ w ~n:100 () ] }; w ~n:10 () ]
  in
  Alcotest.check
    Alcotest.(list (float 1e-9))
    "single melted gap" [ 520.0 ] (Compiler.Profiler.gaps f)

let profiler_loop_with_ep () =
  let f =
    make_func ~name:"f" ~params:[]
      ~body:
        [
          w ~n:10 ();
          Loop
            {
              trips = 3;
              body = [ w ~n:5 (); Mig_point 0; w ~n:7 () ];
            };
          w ~n:11 ();
        ]
  in
  (* entry->first ep: 10+5; per-iteration wrap: 7+5; exit: 7+11. *)
  Alcotest.check
    Alcotest.(list (float 1e-9))
    "prefix, wrap, suffix" [ 15.0; 12.0; 18.0 ] (Compiler.Profiler.gaps f)

let profiler_dynamic_checks () =
  let f =
    make_func ~name:"f" ~params:[]
      ~body:
        [ Mig_point 0; Loop { trips = 4; body = [ Mig_point 1 ] } ]
  in
  checki "loop multiplies checks" 5 (Compiler.Profiler.dynamic_checks f)

(* --- migration point insertion -------------------------------------------------- *)

let instrument_bounds_gaps () =
  let budget = 10_000 in
  let f =
    make_func ~name:"main" ~params:[]
      ~body:
        [
          w ~n:50_000 ();
          Loop { trips = 100; body = [ w ~n:500 () ] };
          Loop
            {
              trips = 7;
              body = [ w ~n:3_000 (); Call { site_id = 0; callee = "leaf"; args = [] } ];
            };
        ]
  in
  let leaf = make_func ~name:"leaf" ~params:[] ~body:[ w ~n:200 () ] in
  let prog = make ~name:"p" ~funcs:[ f; leaf ] ~globals:[] ~entry:"main" in
  let inst = Compiler.Migration_points.instrument ~budget prog in
  checkb "gaps bounded" true
    (Compiler.Migration_points.check_instrumented ~budget inst = Ok ());
  checkb "points added" true (Compiler.Migration_points.count_points inst > 0)

let instrument_preserves_work () =
  let budget = 10_000 in
  let prog = Gen.random_program 1234 in
  let inst = Compiler.Migration_points.instrument ~budget prog in
  (* Dynamic totals may grow slightly from loop-chunk rounding, never
     shrink below the original. *)
  let before = Workload.Programs.total_dynamic prog in
  let after = Workload.Programs.total_dynamic inst in
  checkb "work preserved within rounding" true
    (after >= before *. 0.999 && after <= before *. 1.10)

let instrument_entry_exit_points () =
  let prog = Gen.random_program 77 in
  let inst = Compiler.Migration_points.instrument prog in
  List.iter
    (fun (_, func) ->
      (match func.body with
      | Mig_point _ :: _ -> ()
      | _ -> Alcotest.fail "no entry migration point");
      match List.rev func.body with
      | Mig_point _ :: _ -> ()
      | _ -> Alcotest.fail "no exit migration point")
    inst.funcs

let instrument_idempotent_effect () =
  let budget = 50_000 in
  let prog = Gen.random_program 4242 in
  let once = Compiler.Migration_points.instrument ~budget prog in
  let twice = Compiler.Migration_points.instrument ~budget once in
  checki "no growth on re-instrumentation"
    (Compiler.Migration_points.count_points once)
    (Compiler.Migration_points.count_points twice)

let library_functions_not_instrumented () =
  (* Paper Section 5.4: no migration during library code. *)
  let lib =
    as_library
      (make_func ~name:"lib_memcpy" ~params:[]
         ~body:[ w ~n:100_000 () ])
  in
  let main_f =
    make_func ~name:"main" ~params:[]
      ~body:[ Call { site_id = 0; callee = "lib_memcpy"; args = [] } ]
  in
  let prog = make ~name:"p" ~funcs:[ main_f; lib ] ~globals:[] ~entry:"main" in
  let inst = Compiler.Migration_points.instrument ~budget:1_000 prog in
  checki "library untouched" 0
    (List.length (Ir.Prog.mig_points (find_func inst "lib_memcpy")));
  checkb "user code instrumented" true
    (List.length (Ir.Prog.mig_points (find_func inst "main")) > 0);
  (* The gap bound holds for user code even though the library's long
     body is exempt. *)
  checkb "bound check exempts the library" true
    (Compiler.Migration_points.check_instrumented ~budget:1_000 inst = Ok ());
  checkb "library gap visible when included" true
    (Compiler.Profiler.max_gap ~include_library:true inst > 1_000.0)

let is_model_uses_libc () =
  let prog = Workload.Programs.program Workload.Spec.IS Workload.Spec.A in
  let memcpy = find_func prog "memcpy" in
  checkb "memcpy is library code" true memcpy.is_library;
  let inst = Compiler.Migration_points.instrument prog in
  checki "no points in memcpy" 0
    (List.length (Ir.Prog.mig_points (find_func inst "memcpy")))

let instrument_random_props =
  QCheck.Test.make ~name:"instrumentation bounds every gap" ~count:120
    QCheck.(int_bound 50_000)
    (fun seed ->
      let budget = 5_000 in
      let prog = Gen.random_program seed in
      let inst = Compiler.Migration_points.instrument ~budget prog in
      Compiler.Migration_points.check_instrumented ~budget inst = Ok ())

let tracer_random_props =
  QCheck.Test.make
    ~name:"tracer agrees with static accounting on random programs" ~count:120
    QCheck.(int_bound 60_000)
    (fun seed ->
      let budget = 5_000 in
      let prog = Gen.random_program seed in
      let inst = Compiler.Migration_points.instrument ~budget prog in
      let s = Compiler.Tracer.trace inst in
      let total = Workload.Programs.total_dynamic inst in
      let checks = Workload.Programs.total_checks inst in
      Float.abs (s.Compiler.Tracer.total_instructions -. total)
      <= Float.max 1.0 (total *. 1e-9)
      && Float.abs (s.Compiler.Tracer.checks_executed -. checks) < 0.5
      (* The dynamic worst interval respects the static bound (random
         programs have no library functions). *)
      && s.Compiler.Tracer.max_interval <= float_of_int budget)

(* --- dynamic tracer ---------------------------------------------------------- *)

let tracer_matches_static_totals () =
  List.iter
    (fun bench ->
      let prog = Workload.Programs.program bench Workload.Spec.A in
      let inst = Compiler.Migration_points.instrument prog in
      let s = Compiler.Tracer.trace inst in
      let expected = Workload.Programs.total_dynamic inst in
      checkb "dynamic totals agree" true
        (Float.abs (s.Compiler.Tracer.total_instructions -. expected)
        < expected *. 1e-9);
      checkb "check counts agree" true
        (Float.abs
           (s.Compiler.Tracer.checks_executed
           -. Workload.Programs.total_checks inst)
        < 0.5))
    [ Workload.Spec.CG; Workload.Spec.IS; Workload.Spec.FT; Workload.Spec.LU ]

let tracer_bounds_response_time () =
  (* After instrumentation, the *dynamic* worst interval between executed
     checks is within the budget — the end-to-end response-time claim. *)
  List.iter
    (fun bench ->
      let prog = Workload.Programs.program bench Workload.Spec.B in
      let inst = Compiler.Migration_points.instrument prog in
      let s = Compiler.Tracer.trace inst in
      (* Library code is never instrumented, so time spent inside it
         legitimately extends the interval (the Section 5.4 limitation);
         the bound is budget + the largest library call. *)
      let library_slack =
        List.fold_left
          (fun acc (_, f) ->
            if f.is_library then
              Float.max acc (float_of_int (Ir.Prog.dynamic_instructions f))
            else acc)
          0.0 inst.funcs
      in
      checkb
        (Workload.Spec.bench_to_string bench ^ " dynamic interval bounded")
        true
        (s.Compiler.Tracer.max_interval
        <= float_of_int Compiler.Migration_points.default_budget
           +. library_slack);
      (* ~50M instructions plus one library call is tens of milliseconds
         on either machine. *)
      let rt =
        Compiler.Tracer.worst_response_time_s inst
          (Isa.Cost_model.of_arch Isa.Arch.Arm64)
      in
      checkb "response under 100ms even on the ARM" true (rt < 0.1))
    Workload.Spec.npb

let tracer_rejects_recursion () =
  let f =
    make_func ~name:"main" ~params:[]
      ~body:[ Call { site_id = 0; callee = "main"; args = [] } ]
  in
  let p = make ~name:"rec" ~funcs:[ f ] ~globals:[] ~entry:"main" in
  checkb "recursive rejected" true
    (try
       ignore (Compiler.Tracer.trace p);
       false
     with Invalid_argument _ -> true)

(* --- toolchain -------------------------------------------------------------------- *)

let toolchain_end_to_end () =
  let tc = Compiler.Toolchain.compile sample_prog in
  checkb "aligned" true
    (Binary.Align.check_aligned tc.Compiler.Toolchain.aligned = Ok ());
  checki "two ISAs" 2 (List.length tc.Compiler.Toolchain.isas);
  checkb "has migration points" true (tc.Compiler.Toolchain.migration_points > 0);
  List.iter
    (fun arch ->
      let per = Compiler.Toolchain.for_arch tc arch in
      checkb "elf entry in text" true
        (match
           Binary.Elf.segment_at per.Compiler.Toolchain.elf
             per.Compiler.Toolchain.elf.Binary.Elf.entry
         with
        | Some s -> s.Binary.Elf.name = ".text"
        | None -> false))
    Isa.Arch.all

let toolchain_tls_unified () =
  let tc = Compiler.Toolchain.compile sample_prog in
  let layouts =
    List.map (fun p -> p.Compiler.Toolchain.tls) tc.Compiler.Toolchain.isas
  in
  match layouts with
  | a :: rest ->
    List.iter
      (fun b -> checkb "TLS layouts compatible" true (Memsys.Tls.compatible a b))
      rest
  | [] -> Alcotest.fail "no layouts"

let toolchain_rejects_illformed () =
  let bad_func =
    make_func ~name:"main" ~params:[] ~body:[ Use "ghost" ]
  in
  let bad = make ~name:"bad" ~funcs:[ bad_func ] ~globals:[] ~entry:"main" in
  checkb "rejected" true
    (try
       ignore (Compiler.Toolchain.compile bad);
       false
     with Invalid_argument _ -> true)

let toolchain_natural_vs_aligned () =
  let naturals = Compiler.Toolchain.natural_layouts sample_prog in
  checki "two natural layouts" 2 (List.length naturals);
  List.iter
    (fun (_, l) -> checkb "valid" true (Binary.Layout.check_no_overlap l = Ok ()))
    naturals

let toolchain_stackmaps_consistent_across_isas () =
  let tc = Compiler.Toolchain.compile sample_prog in
  let maps =
    List.map (fun p -> p.Compiler.Toolchain.stackmaps) tc.Compiler.Toolchain.isas
  in
  match maps with
  | [ a; b ] ->
    checki "pairs up" (List.length a)
      (List.length (Compiler.Stackmap.common_sites a b))
  | _ -> Alcotest.fail "expected two metadata sets"

let suite =
  [
    ("backend code sizes differ per ISA", `Quick, backend_code_sizes_differ);
    ("backend locates every local", `Quick, backend_frame_covers_all_locals);
    ("backend spills address-taken locals", `Quick, backend_address_taken_in_slot);
    ("backend register homes callee-saved", `Quick,
     backend_register_homes_are_callee_saved);
    ("backend slots disjoint from save area", `Quick, backend_slots_disjoint);
    ("backend frame size sufficient", `Quick, backend_frame_fits);
    ("backend x86 spills more than arm", `Quick, backend_x86_fewer_registers);
    ("stackmap per-site entries", `Quick, stackmap_entries_per_site);
    ("stackmap cross-ISA agreement", `Quick, stackmap_common_sites_agree);
    ("unwind rules", `Quick, unwind_rules);
    ("unwind save-slot lookup", `Quick, unwind_saved_offset_lookup);
    ("profiler straight-line gaps", `Quick, profiler_straight_line);
    ("profiler melts call-free loops", `Quick, profiler_loop_no_ep_melts);
    ("profiler loop prefix/wrap/suffix", `Quick, profiler_loop_with_ep);
    ("profiler dynamic check count", `Quick, profiler_dynamic_checks);
    ("instrumentation bounds gaps", `Quick, instrument_bounds_gaps);
    ("instrumentation preserves work", `Quick, instrument_preserves_work);
    ("instrumentation adds entry/exit points", `Quick, instrument_entry_exit_points);
    ("instrumentation idempotent in effect", `Quick, instrument_idempotent_effect);
    ("dwarf CIE per ISA", `Quick, dwarf_cie_per_isa);
    ("dwarf FDE offsets round-trip", `Quick, dwarf_fde_roundtrip);
    ("dwarf full debug_frame", `Quick, dwarf_debug_frame_full);
    ("library functions exempt from instrumentation", `Quick,
     library_functions_not_instrumented);
    ("IS model routes through libc", `Quick, is_model_uses_libc);
    QCheck_alcotest.to_alcotest instrument_random_props;
    QCheck_alcotest.to_alcotest tracer_random_props;
    ("tracer matches static totals", `Quick, tracer_matches_static_totals);
    ("tracer bounds dynamic response time", `Quick, tracer_bounds_response_time);
    ("tracer rejects recursion", `Quick, tracer_rejects_recursion);
    ("toolchain end to end", `Quick, toolchain_end_to_end);
    ("toolchain unified TLS", `Quick, toolchain_tls_unified);
    ("toolchain rejects ill-formed programs", `Quick, toolchain_rejects_illformed);
    ("toolchain natural layouts", `Quick, toolchain_natural_vs_aligned);
    ("toolchain stackmaps consistent", `Quick,
     toolchain_stackmaps_consistent_across_isas);
  ]
