(* hetmig — command-line front end to the heterogeneous-ISA migration
   system: compile benchmark models to multi-ISA binaries, inspect them,
   migrate suspended threads between ISAs, evaluate emulation baselines,
   run scheduling studies, and regenerate the paper's experiments. *)

open Cmdliner

let bench_conv =
  let parse s =
    let matching =
      List.find_opt
        (fun b -> Workload.Spec.bench_to_string b = String.lowercase_ascii s)
        Workload.Spec.all_benches
    in
    match matching with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown benchmark %s (try: %s)" s
              (String.concat ", "
                 (List.map Workload.Spec.bench_to_string
                    Workload.Spec.all_benches))))
  in
  Arg.conv (parse, fun ppf b ->
      Format.pp_print_string ppf (Workload.Spec.bench_to_string b))

let cls_conv =
  let parse = function
    | "A" | "a" -> Ok Workload.Spec.A
    | "B" | "b" -> Ok Workload.Spec.B
    | "C" | "c" -> Ok Workload.Spec.C
    | s -> Error (`Msg (Printf.sprintf "unknown class %s (A, B or C)" s))
  in
  Arg.conv (parse, fun ppf c ->
      Format.pp_print_string ppf (Workload.Spec.cls_to_string c))

let arch_conv =
  let parse s =
    match Isa.Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown ISA %s" s))
  in
  Arg.conv (parse, Isa.Arch.pp)

let bench_arg = Arg.(required & pos 0 (some bench_conv) None
                     & info [] ~docv:"BENCH" ~doc:"Benchmark (cg, is, ft, ...).")
let cls_arg =
  Arg.(value & pos 1 cls_conv Workload.Spec.A
       & info [] ~docv:"CLASS" ~doc:"Problem class: A, B or C.")

(* --- compile ------------------------------------------------------------ *)

let compile_cmd =
  let run bench cls show_script show_dwarf =
    let binary = Hetmig.Het.compile_benchmark bench cls in
    let spec = Workload.Spec.spec bench cls in
    Format.printf "multi-ISA binary for %s@." spec.Workload.Spec.name;
    Format.printf "  migration points: %d@."
      binary.Compiler.Toolchain.migration_points;
    List.iter
      (fun arch ->
        let per = Compiler.Toolchain.for_arch binary arch in
        Format.printf "  %-7s text %6d bytes (+%d padding), entry %#x@."
          (Isa.Arch.to_string arch)
          (Hetmig.Het.code_size binary arch)
          (Hetmig.Het.alignment_padding binary arch)
          per.Compiler.Toolchain.elf.Binary.Elf.entry)
      Isa.Arch.all;
    Format.printf "  symbols at identical addresses: %s@."
      (match Binary.Align.check_aligned binary.Compiler.Toolchain.aligned with
      | Ok () -> "yes"
      | Error e -> "NO - " ^ e);
    if show_script then begin
      let layout =
        Binary.Align.layout_for binary.Compiler.Toolchain.aligned
          Isa.Arch.X86_64
      in
      print_string (Binary.Linker_script.render layout)
    end;
    if show_dwarf then
      List.iter
        (fun arch -> print_string (Hetmig.Het.debug_frame binary arch))
        Isa.Arch.all
  in
  let script =
    Arg.(value & flag
         & info [ "linker-script" ] ~doc:"Print the generated linker script.")
  in
  let dwarf =
    Arg.(value & flag
         & info [ "debug-frame" ]
             ~doc:"Print the DWARF CFI the migration runtime consumes.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a benchmark to a multi-ISA binary")
    Term.(const run $ bench_arg $ cls_arg $ script $ dwarf)

(* --- migrate ------------------------------------------------------------- *)

let migrate_cmd =
  let run bench cls from_ =
    let binary = Hetmig.Het.compile_benchmark bench cls in
    Format.printf "%-24s %7s %7s %7s %10s %9s@." "site" "frames" "values"
      "ptrfix" "latency" "verified";
    List.iter
      (fun site ->
        let fname, id = site in
        match Hetmig.Het.migrate_at binary ~from_ ~site with
        | Ok r ->
          Format.printf "%-24s %7d %7d %7d %8.0fus %9b@."
            (Printf.sprintf "%s#%d" fname id)
            r.Hetmig.Het.frames r.Hetmig.Het.values_copied
            r.Hetmig.Het.pointers_fixed r.Hetmig.Het.latency_us
            r.Hetmig.Het.verified
        | Error e ->
          Format.printf "%-24s error: %s@." (Printf.sprintf "%s#%d" fname id) e)
      (Hetmig.Het.migration_points binary)
  in
  let from_arg =
    Arg.(value & opt arch_conv Isa.Arch.X86_64
         & info [ "from" ] ~docv:"ISA" ~doc:"Source ISA (default x86_64).")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Transform a benchmark's stack at every migration point")
    Term.(const run $ bench_arg $ cls_arg $ from_arg)

(* --- emulation ------------------------------------------------------------ *)

let emulation_cmd =
  let run bench cls threads =
    let spec = Workload.Spec.spec bench cls in
    let a =
      Baseline.Emulation.slowdown Baseline.Emulation.Arm_on_x86 spec ~threads
    in
    let x =
      Baseline.Emulation.slowdown Baseline.Emulation.X86_on_arm spec ~threads
    in
    Format.printf "%s, %d thread(s):@." spec.Workload.Spec.name threads;
    Format.printf "  ARM binary emulated on x86: %6.1fx slower than native ARM@." a;
    Format.printf "  x86 binary emulated on ARM: %6.1fx slower than native x86@." x
  in
  let threads =
    Arg.(value & opt int 1 & info [ "threads"; "t" ] ~doc:"Native thread count.")
  in
  Cmd.v
    (Cmd.info "emulation"
       ~doc:"KVM/QEMU DBT slowdown of the benchmark (the Figure 1 baseline)")
    Term.(const run $ bench_arg $ cls_arg $ threads)

(* --- schedule --------------------------------------------------------------- *)

let crash_conv =
  (* Sched.Validate names the token that broke ("twelve" is not a node
     id) instead of one catch-all message; the whole-fleet range check
     happens at run setup, once --nodes is known. *)
  let parse s =
    match Sched.Validate.crash_spec s with
    | Ok c -> Ok c
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf (c : Faults.Plan.crash) ->
      Format.fprintf ppf "%d@%g" c.Faults.Plan.node c.Faults.Plan.at)

(* CLI-boundary validation: report the offending flag and exit 2 rather
   than crash deep inside a simulator's [invalid_arg]. *)
let validated ~cmd = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "hetmig %s: %s@." cmd msg;
    exit 2

(* Per-policy output path for --trace: "out.json" -> "out-<policy>.json"
   (policy names are filename-safe). *)
let trace_path base policy_name =
  match Filename.chop_suffix_opt ~suffix:".json" base with
  | Some stem -> Printf.sprintf "%s-%s.json" stem policy_name
  | None -> Printf.sprintf "%s-%s" base policy_name

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let schedule_cmd =
  let run seed jobs periodic drop fault_seed retry_budget crashes
      page_timeout_rate dsm_batch prefetch trace metrics =
    let js =
      if periodic then Sched.Arrival.periodic ~seed ~waves:5 ~max_per_wave:14
      else Sched.Arrival.sustained ~seed ~jobs
    in
    (* No fault flags -> no plan at all: the run is byte-identical to one
       from a build without fault injection. *)
    let faults =
      if drop = 0.0 && crashes = [] && page_timeout_rate = 0.0 then None
      else
        Some
          (Faults.Plan.make ~seed:fault_seed
             ~messages:
               [ { Faults.Plan.kind = "*"; drop; delay = drop;
                   delay_s = 200e-6 } ]
             ~crashes ~page_timeout_rate ~retry_budget ())
    in
    Format.printf "%d jobs (%s, seed %d):@." (List.length js)
      (if periodic then "periodic" else "sustained")
      seed;
    (match faults with
    | Some plan -> Format.printf "fault plan: %a@." Faults.Plan.pp plan
    | None -> ());
    List.iter
      (fun p ->
        let obs =
          if trace <> None || metrics then Obs.create () else Obs.noop
        in
        let r = Sched.Scheduler.run ?faults ~dsm_batch ~prefetch ~obs p js in
        Format.printf "  %a@." Sched.Scheduler.pp_result r;
        (match trace with
        | Some base ->
          let path = trace_path base (Sched.Policy.name p) in
          write_file path (Obs.chrome_json obs);
          Format.printf "    (trace: %s, %d events)@." path
            (Obs.event_count obs)
        | None -> ());
        if metrics then print_string (Obs.metrics_text obs))
      Sched.Policy.all
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let jobs =
    Arg.(value & opt int 20 & info [ "jobs" ] ~doc:"Jobs (sustained mode).")
  in
  let periodic =
    Arg.(value & flag & info [ "periodic" ] ~doc:"Periodic wave arrivals.")
  in
  let drop =
    Arg.(value & opt float 0.0
         & info [ "drop" ] ~docv:"P"
             ~doc:"Message drop & delay probability (fault injection).")
  in
  let fault_seed =
    Arg.(value & opt int 42
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed of the fault plan's own PRNG stream.")
  in
  let retry_budget =
    Arg.(value & opt int 3
         & info [ "retry-budget" ] ~docv:"N"
             ~doc:"Send attempts per message and admissions per crashed job.")
  in
  let crashes =
    Arg.(value & opt_all crash_conv []
         & info [ "crash" ] ~docv:"NODE@TIME"
             ~doc:"Crash a node at a simulated time (repeatable).")
  in
  let page_timeout_rate =
    Arg.(value & opt float 0.0
         & info [ "page-timeout-rate" ] ~docv:"P"
             ~doc:"Probability a page-request batch times out once.")
  in
  let dsm_batch =
    Arg.(value & flag
         & info [ "dsm-batch" ]
             ~doc:
               "Coalesce contiguous hDSM page runs into single protocol \
                operations (off: per-page, the paper's model).")
  in
  let prefetch =
    Arg.(value & flag
         & info [ "prefetch" ]
             ~doc:
               "Push a migrating thread's predicted working set to the \
                destination during the stack transformation.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:
               "Write a Chrome trace-event JSON per policy (Perfetto / \
                chrome://tracing loadable) to PATH with the policy name \
                appended, e.g. out-dynamic-balanced.json.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the collected metrics registry after each policy.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Run a workload under all five scheduling policies")
    Term.(const run $ seed $ jobs $ periodic $ drop $ fault_seed $ retry_budget
          $ crashes $ page_timeout_rate $ dsm_batch $ prefetch $ trace
          $ metrics)

(* --- metrics ----------------------------------------------------------------- *)

let metrics_cmd =
  let run json trace =
    let obs, r = Experiments.Telemetry.observed_run () in
    (match trace with
    | Some path ->
      write_file path (Obs.chrome_json obs);
      Format.eprintf "(trace written to %s, %d events)@." path
        (Obs.event_count obs)
    | None -> ());
    if json then begin
      Format.eprintf "canonical degraded scenario: %a@."
        Sched.Scheduler.pp_result r;
      print_string (Obs.metrics_json obs)
    end
    else begin
      Format.printf "canonical degraded scenario: %a@.@."
        Sched.Scheduler.pp_result r;
      print_string (Obs.metrics_text obs)
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Emit the registry as byte-stable sorted JSON instead of \
                text (the result line moves to stderr).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Also write the scenario's Chrome trace-event JSON.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the canonical observed scenario (the fig-12 sustained mix \
          under 5% message loss with a mid-run node crash, \
          dynamic-balanced) and dump its metrics registry")
    Term.(const run $ json $ trace)

(* --- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let run bench cls =
    let prog = Workload.Programs.program bench cls in
    let inst = Compiler.Migration_points.instrument prog in
    let s = Compiler.Tracer.trace inst in
    Format.printf "dynamic trace of %s.%s (instrumented):@."
      (Workload.Spec.bench_to_string bench)
      (Workload.Spec.cls_to_string cls);
    Format.printf "  instructions:    %.3e@." s.Compiler.Tracer.total_instructions;
    Format.printf "  checks executed: %.0f@." s.Compiler.Tracer.checks_executed;
    Format.printf "  worst interval:  %.3e instructions@."
      s.Compiler.Tracer.max_interval;
    Format.printf "  mean interval:   %.3e instructions@."
      s.Compiler.Tracer.mean_interval;
    List.iter
      (fun arch ->
        Format.printf "  worst response on %-7s %.1f ms@."
          (Isa.Arch.to_string arch)
          (1e3 *. Compiler.Tracer.worst_response_time_s inst
                    (Isa.Cost_model.of_arch arch)))
      Isa.Arch.all
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Dynamic migration-response trace of an instrumented benchmark")
    Term.(const run $ bench_arg $ cls_arg)

(* --- state-map -------------------------------------------------------------- *)

let state_map_cmd =
  let run bench cls =
    let binary = Hetmig.Het.compile_benchmark bench cls in
    let m = Hetmig.Het.state_mapping_report binary in
    Format.printf "Section-3 state mapping for %s.%s:@."
      (Workload.Spec.bench_to_string bench)
      (Workload.Spec.cls_to_string cls);
    Format.printf "  P (globals/heap/code addresses): %s@."
      (if m.Hetmig.Het.globals_identity then "identity mapping" else "BROKEN");
    Format.printf "  .text: %s@."
      (if m.Hetmig.Het.code_aliased then "aliased per-ISA at one range"
       else "NOT aliased");
    Format.printf "  L (thread-local storage): %s@."
      (if m.Hetmig.Het.tls_identity then "identity mapping (x86-64 scheme)"
       else "BROKEN");
    Format.printf "  S (stacks): %s@."
      (if m.Hetmig.Het.stacks_divergent then
         "transformed by f_AB at migration" else "identical (unexpected)");
    List.iter
      (fun (fname, a, x) ->
        Format.printf "    %-20s arm64 frame %4d B, x86_64 frame %4d B@." fname
          a x)
      m.Hetmig.Het.divergent_frames;
    Format.printf "  R (registers): transformed by r_AB at migration@."
  in
  Cmd.v
    (Cmd.info "state-map"
       ~doc:"Verify the paper's Section-3 state-class mappings on a binary")
    Term.(const run $ bench_arg $ cls_arg)

(* --- lint ------------------------------------------------------------------- *)

let lint_cmd =
  let run json rules workloads jobs seq list_rules fail_on_warn =
    if list_rules then begin
      Format.printf "%-32s %-8s %s@." "RULE" "SEVERITY" "DESCRIPTION";
      List.iter
        (fun (id, sev, desc) ->
          Format.printf "%-32s %-8s %s@." id
            (Analysis.Diagnostic.severity_to_string sev)
            desc)
        Analysis.Lint.rules
    end
    else begin
      List.iter
        (fun id ->
          if not (Analysis.Lint.is_rule id) then begin
            Format.eprintf "unknown rule %s (hetmig lint --list-rules)@." id;
            exit 2
          end)
        rules;
      let targets =
        match workloads with
        | [] -> Analysis.Lint.all_targets
        | names ->
          List.map
            (fun name ->
              match Analysis.Lint.target_of_name name with
              | Some t -> t
              | None ->
                Format.eprintf "unknown workload %s (want e.g. cg.A)@." name;
                exit 2)
            names
      in
      let rules = match rules with [] -> None | ids -> Some ids in
      let jobs = if seq then Some 1 else jobs in
      let diags = Analysis.Lint.run ?rules ~targets ?jobs () in
      if json then print_string (Analysis.Diagnostic.report_to_json diags)
      else Analysis.Diagnostic.pp_report Format.std_formatter diags;
      if
        Analysis.Diagnostic.errors diags > 0
        || (fail_on_warn && Analysis.Diagnostic.warnings diags > 0)
      then exit 1
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as deterministic JSON (byte-stable \
                   across $(b,--jobs) values).")
  in
  let rules =
    Arg.(value & opt_all string []
         & info [ "rule" ] ~docv:"RULE"
             ~doc:"Check only this rule id (repeatable).")
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"Lint only this workload, e.g. cg.A (repeatable; default: \
                   every benchmark and class).")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains to lint targets on (default: HETMIG_JOBS or the \
                   machine's core count).")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ] ~doc:"Lint sequentially (same as --jobs 1).")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"Print the rule registry and exit.")
  in
  let fail_on_warn =
    Arg.(value & flag
         & info [ "fail-on-warn" ]
             ~doc:"Also exit 1 when any warning-severity diagnostic fires.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Verify migratability invariants of the benchmark programs: IR \
          well-formedness, stackmap coverage, unwind/frame soundness, \
          cross-ISA layout alignment, and DSM race freedom. Exits 1 when \
          any error-severity diagnostic fires.")
    Term.(
      const run $ json $ rules $ workloads $ jobs $ seq $ list_rules
      $ fail_on_warn)

(* --- audit ------------------------------------------------------------------ *)

let audit_cmd =
  let run json rules scenarios domains jobs seq list_rules fail_on_warn =
    if list_rules then begin
      Format.printf "%-32s %-8s %s@." "RULE" "SEVERITY" "DESCRIPTION";
      List.iter
        (fun (id, sev, desc) ->
          Format.printf "%-32s %-8s %s@." id
            (Analysis.Diagnostic.severity_to_string sev)
            desc)
        Analysis.Audit.rules
    end
    else begin
      List.iter
        (fun id ->
          if not (Analysis.Audit.is_rule id) then begin
            Format.eprintf "unknown rule %s (hetmig audit --list-rules)@." id;
            exit 2
          end)
        rules;
      let scenarios =
        match scenarios with
        | [] -> Analysis.Audit.all_scenarios
        | names ->
          List.map
            (fun name ->
              match Analysis.Audit.scenario_of_name name with
              | Some s -> s
              | None ->
                Format.eprintf
                  "unknown scenario %s (want fleet, cluster, serve or \
                   scheduler)@."
                  name;
                exit 2)
            names
      in
      let rules = match rules with [] -> None | ids -> Some ids in
      let jobs = if seq then Some 1 else jobs in
      let diags = Analysis.Audit.run ?rules ~scenarios ~domains ?jobs () in
      if json then print_string (Analysis.Diagnostic.report_to_json diags)
      else Analysis.Diagnostic.pp_report Format.std_formatter diags;
      if
        Analysis.Diagnostic.errors diags > 0
        || (fail_on_warn && Analysis.Diagnostic.warnings diags > 0)
      then exit 1
    end
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as deterministic JSON (byte-stable \
                   across $(b,--jobs) values).")
  in
  let rules =
    Arg.(value & opt_all string []
         & info [ "rule" ] ~docv:"RULE"
             ~doc:"Check only this rule id (repeatable).")
  in
  let scenarios =
    Arg.(value & opt_all string []
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Audit only this scenario: fleet, cluster, serve or \
                   scheduler (repeatable; default: all four).")
  in
  let domains =
    Arg.(value & opt int 4
         & info [ "domains" ] ~docv:"N"
             ~doc:"Parallel lane count certified against the sequential \
                   reference run.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains to fan audit tasks over (default: HETMIG_JOBS or \
                   the machine's core count).")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ] ~doc:"Audit sequentially (same as --jobs 1).")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"Print the rule registry and exit.")
  in
  let fail_on_warn =
    Arg.(value & flag
         & info [ "fail-on-warn" ]
             ~doc:"Also exit 1 when any warning-severity diagnostic fires.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Verify the parallel runtime: re-run the committed fleet, \
          cluster, serve and scheduler scenarios with execution capture \
          enabled, check \
          the recorded schedule against the conservative-lookahead \
          invariants, detect cross-island ownership races, and certify \
          domains=1 and domains=N runs byte-identical. Exits 1 when any \
          error-severity diagnostic fires.")
    Term.(
      const run $ json $ rules $ scenarios $ domains $ jobs $ seq $ list_rules
      $ fail_on_warn)

(* --- fleet ------------------------------------------------------------------ *)

let fleet_cmd =
  let run nodes jobs seed racks mix islands seq epoch rate placement
      no_migration fail_rate out =
    let must v = validated ~cmd:"fleet" v in
    let nodes = must (Sched.Validate.at_least ~what:"--nodes" ~min:2 nodes) in
    let jobs = must (Sched.Validate.at_least ~what:"--jobs" ~min:1 jobs) in
    let epoch = must (Sched.Validate.positive_float ~what:"--epoch" epoch) in
    let rate = must (Sched.Validate.positive_float ~what:"--rate" rate) in
    let fail_rate =
      must (Sched.Validate.probability ~what:"--fail-rate" fail_rate)
    in
    let islands = must (Sched.Validate.islands islands) in
    let topology =
      must (Sched.Validate.topology ~nodes ~racks ~mix_name:mix)
    in
    let cfg =
      { (Sched.Fleet.default ~nodes ~jobs ~seed) with
        Sched.Fleet.epoch_s = epoch;
        mean_interarrival_s = rate;
        placement;
        migration = not no_migration;
        fail_rate;
        topology;
      }
    in
    let domains =
      if seq then 1
      else
        match islands with
        | Some d -> d
        | None -> Parallel.Pool.default_jobs ()
    in
    let r = Sched.Fleet.run ~domains cfg in
    let text = Sched.Fleet.render cfg r in
    (match out with
    | Some path -> write_file path text
    | None -> print_string text);
    if r.Sched.Fleet.failed > 0 && cfg.Sched.Fleet.fail_rate = 0.0 then exit 1
  in
  let nodes =
    Arg.(value & opt int 64
         & info [ "nodes" ] ~docv:"N" ~doc:"Worker nodes (alternating \
                                            x86-64/arm64 servers).")
  in
  let racks =
    Arg.(value & opt int 1
         & info [ "racks" ] ~docv:"R"
             ~doc:"Racks to split the nodes over (must divide --nodes). 1 \
                   (the default) is the flat pre-cluster topology whose \
                   single hop is the paper's 10GbE link; more racks use \
                   ToR + aggregation hops, making migration and hDSM \
                   costs path-dependent.")
  in
  let mix =
    Arg.(value & opt string "alternate"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"ISA mix: alternate (per node), isa-racks (whole racks \
                   per ISA), x86-only or arm-only.")
  in
  let jobs =
    Arg.(value & opt int 1000 & info [ "jobs" ] ~docv:"N" ~doc:"Jobs to run.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let islands =
    Arg.(value & opt (some int) None
         & info [ "islands" ] ~docv:"D"
             ~doc:
               "Domains to span the run over (default: HETMIG_JOBS or the \
                machine's core count). The report is byte-identical \
                whatever this is.")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"Sequential reference run (same as --islands 1).")
  in
  let epoch =
    Arg.(value & opt float 0.25
         & info [ "epoch" ] ~docv:"S"
             ~doc:"Control-traffic batching epoch in seconds — the \
                   runtime's conservative lookahead.")
  in
  let rate =
    Arg.(value & opt float 0.5
         & info [ "rate" ] ~docv:"S" ~doc:"Mean job interarrival in seconds.")
  in
  let placement =
    let placement_conv =
      let parse = function
        | "ll" | "least-loaded" -> Ok Sched.Fleet.Least_loaded
        | "rr" | "round-robin" -> Ok Sched.Fleet.Round_robin
        | s -> Error (`Msg (Printf.sprintf "unknown placement %s (ll, rr)" s))
      in
      Arg.conv (parse, fun ppf p ->
          Format.pp_print_string ppf (Sched.Fleet.placement_name p))
    in
    Arg.(value & opt placement_conv Sched.Fleet.Least_loaded
         & info [ "placement" ] ~docv:"POLICY"
             ~doc:"Placement policy: ll (least-loaded) or rr (round-robin).")
  in
  let no_migration =
    Arg.(value & flag
         & info [ "no-migration" ]
             ~doc:"Disable epoch-tick load-balancing migration.")
  in
  let fail_rate =
    Arg.(value & opt float 0.0
         & info [ "fail-rate" ] ~docv:"P"
             ~doc:"Per-phase failure probability (phases retry, then the \
                   job fails).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Write the report to PATH instead of stdout.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Warehouse-scale mixed-ISA fleet simulation on the parallel \
          time-island runtime: one scheduler island plus one island per \
          node, synchronized on topology-aware conservative-lookahead \
          windows (each island pair's minimum delay is the epoch plus \
          its rack-fabric path latency). The report is a pure function \
          of the configuration, not of the domain count.")
    Term.(const run $ nodes $ jobs $ seed $ racks $ mix $ islands $ seq
          $ epoch $ rate $ placement $ no_migration $ fail_rate $ out)

(* --- cluster ---------------------------------------------------------------- *)

let cluster_cmd =
  let run nodes racks mix jobs seed policy power_cap islands seq epoch rate
      out =
    let must v = validated ~cmd:"cluster" v in
    let nodes = must (Sched.Validate.at_least ~what:"--nodes" ~min:2 nodes) in
    let jobs = must (Sched.Validate.at_least ~what:"--jobs" ~min:1 jobs) in
    let epoch = must (Sched.Validate.positive_float ~what:"--epoch" epoch) in
    let rate = must (Sched.Validate.positive_float ~what:"--rate" rate) in
    let islands = must (Sched.Validate.islands islands) in
    let topology =
      must (Sched.Validate.topology ~nodes ~racks ~mix_name:mix)
    in
    let policy =
      match Sched.Cluster.policy_of_name policy with
      | Some p -> p
      | None ->
        Format.eprintf
          "hetmig cluster: unknown --policy %s (want pack-power-cap, \
           edp-migrate or work-steal)@."
          policy;
        exit 2
    in
    let cfg =
      { (Sched.Cluster.default ~topology ~jobs ~seed) with
        Sched.Cluster.policy;
        epoch_s = epoch;
        mean_interarrival_s = rate;
      }
    in
    let cfg =
      match power_cap with
      | None -> cfg
      | Some w ->
        let w = must (Sched.Validate.positive_float ~what:"--power-cap" w) in
        { cfg with Sched.Cluster.power_cap_w = w }
    in
    let domains =
      if seq then 1
      else
        match islands with
        | Some d -> d
        | None -> Parallel.Pool.default_jobs ()
    in
    let r = Sched.Cluster.run ~domains cfg in
    let text = Sched.Cluster.render cfg r in
    match out with
    | Some path -> write_file path text
    | None -> print_string text
  in
  let nodes =
    Arg.(value & opt int 256
         & info [ "nodes" ] ~docv:"N" ~doc:"Cluster nodes.")
  in
  let racks =
    Arg.(value & opt int 8
         & info [ "racks" ] ~docv:"R"
             ~doc:"Racks to split the nodes over (must divide --nodes).")
  in
  let mix =
    Arg.(value & opt string "alternate"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"ISA mix: alternate (per node), isa-racks (whole racks \
                   per ISA), x86-only or arm-only.")
  in
  let jobs =
    Arg.(value & opt int 2000 & info [ "jobs" ] ~docv:"N" ~doc:"Jobs to run.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let policy =
    Arg.(value & opt string "edp-migrate"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Global policy: pack-power-cap (power-capped bin \
                   packing), edp-migrate (energy/EDP-aware placement and \
                   global dynamic migration) or work-steal (idle nodes \
                   steal, in-rack victims first).")
  in
  let power_cap =
    Arg.(value & opt (some float) None
         & info [ "power-cap" ] ~docv:"W"
             ~doc:"Projected cluster power budget for pack-power-cap \
                   (default: 75% of 110W per node).")
  in
  let islands =
    Arg.(value & opt (some int) None
         & info [ "islands" ] ~docv:"D"
             ~doc:
               "Domains to span the run over (default: HETMIG_JOBS or the \
                machine's core count). The report is byte-identical \
                whatever this is.")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"Sequential reference run (same as --islands 1).")
  in
  let epoch =
    Arg.(value & opt float 0.25
         & info [ "epoch" ] ~docv:"S"
             ~doc:"Control-traffic batching epoch in seconds; each island \
                   pair's lookahead is this plus its path latency.")
  in
  let rate =
    Arg.(value & opt float 0.02
         & info [ "rate" ] ~docv:"S" ~doc:"Mean job interarrival in seconds.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Write the report to PATH instead of stdout.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Global cluster scheduling over a rack topology: power-capped \
          bin packing, energy/EDP-aware global dynamic migration, or \
          work stealing across up to 1024 mixed-ISA nodes, on the \
          parallel time-island runtime with topology-aware lookahead. \
          The report is a pure function of the configuration, not of \
          the domain count.")
    Term.(const run $ nodes $ racks $ mix $ jobs $ seed $ policy $ power_cap
          $ islands $ seq $ epoch $ rate $ out)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let run nodes seed arrivals trace_file services duration days rate_high
      rate_low peak_rps demand limit replicas max_replicas routing islands seq
      epoch slo policy window workers zero_downtime crashes out trace metrics
      save_trace =
    (* Sources are lazy: nothing here materializes a trace. The run
       opens its own fresh stream, so memory stays independent of how
       many requests the source will yield. *)
    let source =
      match trace_file with
      | Some path -> Sched.Arrival.Replay_file path
      | None -> begin
        match arrivals with
        | "bursty" ->
          Sched.Arrival.bursty_source ?rate_high ?rate_low ~seed ~services
            ~duration_s:duration ()
        | "diurnal" ->
          Sched.Arrival.diurnal_source ?peak_rps ~seed ~services ~days ()
        | s ->
          Format.eprintf "unknown arrival model %s (bursty, diurnal)@." s;
          exit 2
      end
    in
    let must v = validated ~cmd:"serve" v in
    let nodes = must (Sched.Validate.at_least ~what:"--nodes" ~min:2 nodes) in
    let epoch = must (Sched.Validate.positive_float ~what:"--epoch" epoch) in
    let islands = must (Sched.Validate.islands islands) in
    let check_rate what = function
      | None -> ()
      | Some r -> ignore (must (Sched.Validate.positive_float ~what r))
    in
    check_rate "--rate-high" rate_high;
    check_rate "--rate-low" rate_low;
    check_rate "--peak-rps" peak_rps;
    must (Sched.Validate.crashes_in_range ~nodes crashes);
    (match save_trace with
    | Some path ->
      let s =
        Sched.Arrival.open_stream
          ?limit:(if limit > 0 then Some limit else None)
          source
      in
      Sched.Arrival.stream_to_file s path
    | None -> ());
    let cfg =
      { (Sched.Service.default ~nodes ~seed ~source) with
        Sched.Service.epoch_s = epoch;
        slo_ms = slo;
        policy;
        window_s = window;
        workers;
        zero_downtime;
        crashes;
        replicas;
        max_replicas = max max_replicas replicas;
        routing;
        limit;
      }
    in
    let cfg =
      match demand with
      | Some d -> { cfg with Sched.Service.demand_instructions = d }
      | None -> cfg
    in
    let domains =
      if seq then 1
      else
        match islands with
        | Some d -> d
        | None -> Parallel.Pool.default_jobs ()
    in
    let obs = if trace <> None || metrics then Obs.create () else Obs.noop in
    let r = Sched.Service.run ~domains ~obs cfg in
    let text = Sched.Service.render cfg r in
    (match out with
    | Some path -> write_file path text
    | None -> print_string text);
    (match trace with
    | Some path ->
      write_file path (Obs.chrome_json obs);
      Format.eprintf "(trace written to %s, %d events)@." path
        (Obs.event_count obs)
    | None -> ());
    if metrics then print_string (Obs.metrics_text obs);
    (* Request conservation is the serving path's ground truth; a run
       that loses track of a request is broken however good the report
       looks. *)
    if
      r.Sched.Service.responded + r.Sched.Service.dropped
      + r.Sched.Service.in_flight_at_end
      <> r.Sched.Service.arrived
    then begin
      Format.eprintf "request conservation violated@.";
      exit 1
    end
  in
  let nodes =
    Arg.(value & opt int 16
         & info [ "nodes" ] ~docv:"N"
             ~doc:"Fleet nodes (alternating x86-64/arm64 servers).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let arrivals =
    Arg.(value & opt string "bursty"
         & info [ "arrivals" ] ~docv:"MODEL"
             ~doc:"Arrival model: bursty (MMPP on/off) or diurnal \
                   (piecewise-rate day curve).")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace-file" ] ~docv:"PATH"
             ~doc:"Replay a recorded request trace instead of generating \
                   one (overrides --arrivals).")
  in
  let services =
    Arg.(value & opt int 8
         & info [ "services" ] ~docv:"K" ~doc:"Service instances.")
  in
  let duration =
    Arg.(value & opt float 60.0
         & info [ "duration" ] ~docv:"S"
             ~doc:"Trace length in seconds (bursty model).")
  in
  let days =
    Arg.(value & opt int 2
         & info [ "days" ] ~docv:"D"
             ~doc:"Compressed days to simulate (diurnal model).")
  in
  let rate_high =
    Arg.(value & opt (some float) None
         & info [ "rate-high" ] ~docv:"RPS"
             ~doc:"ON-state request rate per service (bursty model; \
                   default 40).")
  in
  let rate_low =
    Arg.(value & opt (some float) None
         & info [ "rate-low" ] ~docv:"RPS"
             ~doc:"OFF-state request rate per service (bursty model; \
                   default 2).")
  in
  let peak_rps =
    Arg.(value & opt (some float) None
         & info [ "peak-rps" ] ~docv:"RPS"
             ~doc:"Peak request rate per service (diurnal model; \
                   default 20).")
  in
  let demand =
    Arg.(value & opt (some float) None
         & info [ "demand" ] ~docv:"INSTRUCTIONS"
             ~doc:"Mean per-request work in instructions (default 5e7).")
  in
  let limit =
    Arg.(value & opt int 0
         & info [ "limit" ] ~docv:"N"
             ~doc:"Serve at most N requests from the source (0 = all).")
  in
  let replicas =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"R"
             ~doc:"Initial replicas per service.")
  in
  let max_replicas =
    Arg.(value & opt int 1
         & info [ "max-replicas" ] ~docv:"R"
             ~doc:"Scale-out ceiling for the SLO-aware policy (clamped \
                   up to --replicas).")
  in
  let routing =
    let routing_conv =
      let parse = function
        | "p2c" | "power-of-two" -> Ok Sched.Service.P2c
        | "ll" | "least-loaded" -> Ok Sched.Service.Least_loaded
        | s ->
          Error
            (`Msg (Printf.sprintf "unknown routing %s (p2c, least-loaded)" s))
      in
      Arg.conv (parse, fun ppf r ->
          Format.pp_print_string ppf (Sched.Service.routing_name r))
    in
    Arg.(value & opt routing_conv Sched.Service.P2c
         & info [ "routing" ] ~docv:"POLICY"
             ~doc:"Replica selection: p2c (power of two choices) or \
                   least-loaded.")
  in
  let islands =
    Arg.(value & opt (some int) None
         & info [ "islands" ] ~docv:"D"
             ~doc:
               "Domains to span the run over (default: HETMIG_JOBS or the \
                machine's core count). The report is byte-identical \
                whatever this is.")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"Sequential reference run (same as --islands 1).")
  in
  let epoch =
    Arg.(value & opt float 0.05
         & info [ "epoch" ] ~docv:"S"
             ~doc:"Routing/report batching epoch in seconds — the \
                   runtime's conservative lookahead.")
  in
  let slo =
    Arg.(value & opt float 150.0
         & info [ "slo" ] ~docv:"MS" ~doc:"Latency SLO in milliseconds.")
  in
  let policy =
    let policy_conv =
      let parse = function
        | "slo" | "slo-aware" -> Ok Sched.Service.Slo_aware
        | "static-x86" | "x86" -> Ok Sched.Service.Static_x86
        | "static-arm" | "arm" -> Ok Sched.Service.Static_arm
        | s ->
          Error
            (`Msg (Printf.sprintf
                     "unknown policy %s (slo, static-x86, static-arm)" s))
      in
      Arg.conv (parse, fun ppf p ->
          Format.pp_print_string ppf (Sched.Service.policy_name p))
    in
    Arg.(value & opt policy_conv Sched.Service.Slo_aware
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Placement policy: slo (SLO-aware dynamic), static-x86, \
                   or static-arm.")
  in
  let window =
    Arg.(value & opt float 5.0
         & info [ "window" ] ~docv:"S"
             ~doc:"Sliding window for the p99 estimate, seconds.")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N"
             ~doc:"Concurrent requests per service instance.")
  in
  let zero_downtime =
    Arg.(value & flag
         & info [ "zero-downtime" ]
             ~doc:"Ablation stub: migrations pause nothing (isolates the \
                   placement effect from the downtime-vs-tail trade).")
  in
  let crashes =
    Arg.(value & opt_all crash_conv []
         & info [ "crash" ] ~docv:"NODE@TIME"
             ~doc:"Crash a node at a simulated time (repeatable).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Write the report to PATH instead of stdout.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace-event JSON (Perfetto loadable) \
                   with the per-service p99 timeline and migration spans.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the collected metrics registry after the run.")
  in
  let save_trace =
    Arg.(value & opt (some string) None
         & info [ "save-trace" ] ~docv:"PATH"
             ~doc:"Write the (generated or replayed) request trace to a \
                   replayable trace file.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop request serving with latency SLOs on the parallel \
          time-island runtime: services pinned to mixed-ISA nodes, \
          trace-driven open-loop traffic, per-request latency tails, and \
          an SLO-aware policy migrating services across the ISA boundary. \
          The report is a pure function of the configuration, not of the \
          domain count.")
    Term.(const run $ nodes $ seed $ arrivals $ trace_file $ services
          $ duration $ days $ rate_high $ rate_low $ peak_rps $ demand
          $ limit $ replicas $ max_replicas $ routing $ islands $ seq
          $ epoch $ slo $ policy $ window $ workers $ zero_downtime
          $ crashes $ out $ trace $ metrics $ save_trace)

(* --- experiment ---------------------------------------------------------------- *)

let experiment_cmd =
  let experiments =
    [ ("fig1", Experiments.Fig1.run); ("fig3-5", Experiments.Fig35.run);
      ("fig6-9", Experiments.Fig69.run); ("table1", Experiments.Table1.run);
      ("fig10", Experiments.Fig10.run); ("fig11", Experiments.Fig11.run);
      ("fig12", Experiments.Fig12.run); ("fig13", Experiments.Fig13.run);
      ("ablations", Experiments.Ablation.run);
      ("degraded", Experiments.Degraded.run);
      ("prefetch", Experiments.Prefetch.run);
      ("telemetry", Experiments.Telemetry.run) ]
  in
  let run name =
    match List.assoc_opt name experiments with
    | Some f ->
      f Format.std_formatter;
      if Experiments.Shape.failures () > 0 then exit 1
    | None ->
      Format.eprintf "unknown experiment %s; available: %s@." name
        (String.concat ", " (List.map fst experiments));
      exit 2
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"EXPERIMENT" ~doc:"fig1, fig3-5, ..., fig13, table1.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables/figures")
    Term.(const run $ name_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "hetmig" ~version:"1.0.0"
      ~doc:"Heterogeneous-ISA execution migration (ASPLOS 2017 reproduction)"
  in
  let rc =
    Cmd.eval
      (Cmd.group ~default info
         [ compile_cmd; migrate_cmd; emulation_cmd; schedule_cmd; fleet_cmd;
           cluster_cmd; serve_cmd; state_map_cmd; trace_cmd; lint_cmd;
           audit_cmd; metrics_cmd; experiment_cmd ])
  in
  (* Usage errors — including malformed option values like a bad
     --crash spec — exit 2, the conventional usage-error status, rather
     than cmdliner's 124. *)
  exit (if rc = Cmd.Exit.cli_error then 2 else rc)
