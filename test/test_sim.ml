let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkb msg = Alcotest.check Alcotest.bool msg

(* --- Prng -------------------------------------------------------------- *)

let prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Prng.next_int64 a)
      (Sim.Prng.next_int64 b)
  done

let prng_different_seeds () =
  let a = Sim.Prng.create 1 and b = Sim.Prng.create 2 in
  checkb "different streams" false
    (Sim.Prng.next_int64 a = Sim.Prng.next_int64 b)

let prng_int_range () =
  let rng = Sim.Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.int rng 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let prng_int_in_range () =
  let rng = Sim.Prng.create 8 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.int_in rng (-5) 5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let prng_float_range () =
  let rng = Sim.Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Sim.Prng.float rng 3.5 in
    checkb "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let prng_gaussian_moments () =
  let rng = Sim.Prng.create 10 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Sim.Prng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  let s = Sim.Stats.summarize xs in
  checkb "mean close" true (Float.abs (s.Sim.Stats.mean -. 5.0) < 0.1);
  checkb "stddev close" true (Float.abs (s.Sim.Stats.stddev -. 2.0) < 0.1)

let prng_exponential_mean () =
  let rng = Sim.Prng.create 11 in
  let xs = List.init 20_000 (fun _ -> Sim.Prng.exponential rng ~mean:3.0) in
  checkb "mean close" true (Float.abs (Sim.Stats.mean xs -. 3.0) < 0.15);
  List.iter (fun x -> checkb "positive" true (x >= 0.0)) xs

let prng_split_independent () =
  let a = Sim.Prng.create 12 in
  let b = Sim.Prng.split a in
  checkb "split differs from parent" false
    (Sim.Prng.next_int64 a = Sim.Prng.next_int64 b)

let prng_copy_preserves () =
  let a = Sim.Prng.create 13 in
  let _ = Sim.Prng.next_int64 a in
  let b = Sim.Prng.copy a in
  check Alcotest.int64 "copies agree" (Sim.Prng.next_int64 a)
    (Sim.Prng.next_int64 b)

let prng_shuffle_permutation () =
  let rng = Sim.Prng.create 14 in
  let arr = Array.init 50 Fun.id in
  Sim.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 Fun.id) sorted

(* The hot-path fused draws must replay the exact record-based draw
   sequences they replace: [lognormal_of_seed] against a fresh
   generator, and the straight-line [exponential] against its defining
   formula. *)
let prng_lognormal_of_seed_equiv =
  QCheck.Test.make ~name:"Prng.lognormal_of_seed = lognormal . create"
    ~count:500
    QCheck.(triple int (float_bound_exclusive 2.0) (float_bound_exclusive 1.5))
    (fun (seed, mu, sigma) ->
      Sim.Prng.lognormal_of_seed seed ~mu ~sigma
      = Sim.Prng.lognormal (Sim.Prng.create seed) ~mu ~sigma)

let prng_exponential_is_neg_mean_log_u =
  QCheck.Test.make ~name:"Prng.exponential = -mean * log unit_float"
    ~count:500
    QCheck.(pair int (float_bound_exclusive 10.0))
    (fun (seed, m) ->
      let mean = m +. 0.01 in
      let a = Sim.Prng.create seed in
      let b = Sim.Prng.copy a in
      let u = Int64.to_float (Int64.shift_right_logical (Sim.Prng.next_int64 b) 11)
              *. (1.0 /. 9007199254740992.0) in
      u <= 1e-300 || Sim.Prng.exponential a ~mean = -.mean *. log u)

(* --- Ring --------------------------------------------------------------- *)

let ring_fifo_order () =
  let r = Sim.Ring.create ~capacity:4 () in
  for i = 0 to 99 do
    Sim.Ring.push r (float_of_int i) i
  done;
  check Alcotest.int "length" 100 (Sim.Ring.length r);
  for i = 0 to 99 do
    checkf "peek_f sees oldest" (float_of_int i) (Sim.Ring.peek_f r);
    check Alcotest.int "peek_i sees oldest" i (Sim.Ring.peek_i r);
    check Alcotest.int "pop is FIFO" i (Sim.Ring.pop r)
  done;
  checkb "drained" true (Sim.Ring.is_empty r)

let ring_wraparound () =
  (* Interleave pushes and pops so the window straddles the backing
     array's wrap point, then check indexed reads against the logical
     order. *)
  let r = Sim.Ring.create ~capacity:8 () in
  for i = 0 to 5 do Sim.Ring.push r (float_of_int i) i done;
  for _ = 0 to 3 do ignore (Sim.Ring.pop r) done;
  for i = 6 to 12 do Sim.Ring.push r (float_of_int i) i done;
  check Alcotest.int "length" 9 (Sim.Ring.length r);
  for k = 0 to 8 do
    check Alcotest.int "get_i in logical order" (4 + k) (Sim.Ring.get_i r k);
    checkf "get_f in logical order" (float_of_int (4 + k)) (Sim.Ring.get_f r k)
  done;
  let seen = ref [] in
  Sim.Ring.iter r (fun _ i -> seen := i :: !seen);
  checkb "iter is oldest-first" true
    (List.rev !seen = List.init 9 (fun k -> 4 + k))

let ring_detach_transfer () =
  let r = Sim.Ring.create () in
  for i = 0 to 9 do Sim.Ring.push r (float_of_int i) i done;
  let d = Sim.Ring.detach r in
  checkb "detach empties the source" true (Sim.Ring.is_empty r);
  check Alcotest.int "detached holds the backlog" 10 (Sim.Ring.length d);
  Sim.Ring.push r 99.0 99;
  check Alcotest.int "source usable after detach" 99 (Sim.Ring.peek_i r);
  let dst = Sim.Ring.create () in
  Sim.Ring.push dst 50.0 50;
  Sim.Ring.transfer ~src:d ~dst;
  checkb "transfer empties src" true (Sim.Ring.is_empty d);
  check Alcotest.int "transfer appends" 11 (Sim.Ring.length dst);
  check Alcotest.int "dst order: existing first" 50 (Sim.Ring.pop dst);
  check Alcotest.int "then the transferred backlog" 0 (Sim.Ring.pop dst)

let ring_clear_shrinks () =
  let r = Sim.Ring.create ~capacity:4 () in
  for i = 0 to 999 do Sim.Ring.push r 0.0 i done;
  checkb "grew" true (Sim.Ring.capacity r >= 1000);
  Sim.Ring.clear ~shrink_to:8 r;
  checkb "cleared" true (Sim.Ring.is_empty r);
  checkb "shrunk" true (Sim.Ring.capacity r <= 8)

(* --- Stats ------------------------------------------------------------- *)

let stats_summary_basic () =
  let s = Sim.Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "mean" 3.0 s.Sim.Stats.mean;
  checkf "median" 3.0 s.Sim.Stats.median;
  checkf "min" 1.0 s.Sim.Stats.min;
  checkf "max" 5.0 s.Sim.Stats.max;
  check Alcotest.int "n" 5 s.Sim.Stats.n

let stats_stddev () =
  checkf "stddev of constant" 0.0 (Sim.Stats.stddev [ 2.0; 2.0; 2.0 ]);
  let sd = Sim.Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkb "sample stddev" true (Float.abs (sd -. sqrt 2.5) < 1e-9)

let stats_empty_raises () =
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Sim.Stats.summarize []))

let stats_quantile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  checkf "q0" 0.0 (Sim.Stats.quantile sorted 0.0);
  checkf "q0.5" 5.0 (Sim.Stats.quantile sorted 0.5);
  checkf "q1" 10.0 (Sim.Stats.quantile sorted 1.0)

let stats_boxplot_order () =
  let b = Sim.Stats.boxplot [ 9.0; 1.0; 5.0; 3.0; 7.0 ] in
  checkb "ordered" true
    (b.Sim.Stats.bmin <= b.q1 && b.q1 <= b.bmedian && b.bmedian <= b.q3
   && b.q3 <= b.bmax);
  checkf "min" 1.0 b.Sim.Stats.bmin;
  checkf "max" 9.0 b.Sim.Stats.bmax

let stats_log_histogram () =
  let h =
    Sim.Stats.log_histogram ~base:10.0 ~buckets:5 [ 0.5; 5.0; 50.0; 5e9 ]
  in
  check Alcotest.int "bucket0 gets sub-1 and 5" 2 h.Sim.Stats.counts.(0);
  check Alcotest.int "bucket1 gets 50" 1 h.Sim.Stats.counts.(1);
  check Alcotest.int "overflow clamps to last" 1 h.Sim.Stats.counts.(4)

let stats_geometric_mean () =
  checkf "gm of 1,100" 10.0 (Sim.Stats.geometric_mean [ 1.0; 100.0 ])

(* --- Engine ------------------------------------------------------------ *)

let engine_runs_in_time_order () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  Sim.Engine.schedule e ~at:3.0 (fun () -> order := 3 :: !order);
  Sim.Engine.schedule e ~at:1.0 (fun () -> order := 1 :: !order);
  Sim.Engine.schedule e ~at:2.0 (fun () -> order := 2 :: !order);
  Sim.Engine.run e;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !order);
  checkf "clock at last event" 3.0 (Sim.Engine.now e)

let engine_fifo_at_equal_times () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~at:1.0 (fun () -> order := i :: !order)
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "insertion order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !order)

let engine_schedule_during_run () =
  let e = Sim.Engine.create () in
  let hits = ref [] in
  Sim.Engine.schedule e ~at:1.0 (fun () ->
      hits := "a" :: !hits;
      Sim.Engine.schedule_in e ~after:0.5 (fun () -> hits := "b" :: !hits));
  Sim.Engine.run e;
  check Alcotest.(list string) "chained" [ "a"; "b" ] (List.rev !hits);
  checkf "clock" 1.5 (Sim.Engine.now e)

let engine_rejects_past () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~at:2.0 (fun () -> ());
  Sim.Engine.run e;
  checkb "raises on past" true
    (try
       Sim.Engine.schedule e ~at:1.0 (fun () -> ());
       false
     with Invalid_argument _ -> true)

let engine_run_until () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.schedule e ~at:1.0 (fun () -> incr hits);
  Sim.Engine.schedule e ~at:5.0 (fun () -> incr hits);
  Sim.Engine.run_until e 2.0;
  check Alcotest.int "only first fired" 1 !hits;
  checkf "clock advanced to limit" 2.0 (Sim.Engine.now e);
  check Alcotest.int "one pending" 1 (Sim.Engine.pending e)

let engine_many_events_stress () =
  let e = Sim.Engine.create () in
  let rng = Sim.Prng.create 99 in
  let count = ref 0 in
  let last = ref (-1.0) in
  for _ = 1 to 5000 do
    let at = Sim.Prng.float rng 100.0 in
    Sim.Engine.schedule e ~at (fun () ->
        checkb "monotone clock" true (Sim.Engine.now e >= !last);
        last := Sim.Engine.now e;
        incr count)
  done;
  Sim.Engine.run e;
  check Alcotest.int "all fired" 5000 !count

(* --- Trace ------------------------------------------------------------- *)

let trace_roundtrip () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~series:"p" ~time:0.0 1.0;
  Sim.Trace.record t ~series:"p" ~time:1.0 2.0;
  Sim.Trace.record t ~series:"q" ~time:0.5 9.0;
  check
    Alcotest.(list (pair (float 1e-9) (float 1e-9)))
    "series p"
    [ (0.0, 1.0); (1.0, 2.0) ]
    (Sim.Trace.series t "p");
  check Alcotest.(list string) "names" [ "p"; "q" ] (Sim.Trace.series_names t)

let trace_integrate_step () =
  (* 1 W for 1 s then 3 W for 1 s = 4 J. *)
  let samples = [ (0.0, 1.0); (1.0, 3.0) ] in
  checkf "energy" 4.0 (Sim.Trace.integrate samples ~t_end:2.0)

let trace_integrate_before_first_sample () =
  let samples = [ (1.0, 2.0) ] in
  checkf "zero before first" 2.0 (Sim.Trace.integrate samples ~t_end:2.0)

let trace_resample () =
  let samples = [ (0.0, 1.0); (1.0, 5.0) ] in
  let arr = Sim.Trace.resample samples ~dt:0.5 ~t_end:2.0 in
  check
    Alcotest.(array (float 1e-9))
    "step signal" [| 1.0; 1.0; 5.0; 5.0 |] arr

let farr = Alcotest.(array (float 1e-9))

let trace_resample_edges () =
  check farr "empty series is all zeros" [| 0.0; 0.0; 0.0; 0.0 |]
    (Sim.Trace.resample [] ~dt:0.5 ~t_end:2.0);
  check farr "zero before a late single sample" [| 0.0; 3.0; 3.0 |]
    (Sim.Trace.resample [ (0.5, 3.0) ] ~dt:0.5 ~t_end:1.5);
  check farr "dt larger than the window collapses to one bin" [| 2.0 |]
    (Sim.Trace.resample [ (0.0, 2.0) ] ~dt:5.0 ~t_end:2.0);
  check farr "empty window yields an empty array" [||]
    (Sim.Trace.resample [ (0.0, 2.0) ] ~dt:0.5 ~t_end:0.0)

let trace_integrate_edges () =
  checkf "empty series integrates to zero" 0.0
    (Sim.Trace.integrate [] ~t_end:5.0);
  checkf "sample exactly at t_end contributes nothing" 0.0
    (Sim.Trace.integrate [ (2.0, 5.0) ] ~t_end:2.0);
  checkf "step ending exactly at t_end uses the prior value" 2.0
    (Sim.Trace.integrate [ (0.0, 1.0); (2.0, 9.0) ] ~t_end:2.0);
  checkf "single mid-window sample holds to t_end" 3.0
    (Sim.Trace.integrate [ (1.0, 3.0) ] ~t_end:2.0)

(* NaN poisons every order-statistic; the stats layer rejects it loudly
   instead of letting Float.compare sort it to an end of the array. *)
let stats_nan_raises () =
  Alcotest.check_raises "summarize" (Invalid_argument "Stats: NaN input")
    (fun () -> ignore (Sim.Stats.summarize [ 1.0; Float.nan; 2.0 ]));
  Alcotest.check_raises "boxplot" (Invalid_argument "Stats: NaN input")
    (fun () -> ignore (Sim.Stats.boxplot [ Float.nan ]));
  Alcotest.check_raises "quantile (caller-sorted array)"
    (Invalid_argument "Stats.quantile: NaN input") (fun () ->
      ignore (Sim.Stats.quantile [| Float.nan; 1.0 |] 0.5))

let stats_sorts_with_float_compare () =
  (* values polymorphic compare used to box per comparison; the order
     itself must be plain numeric order *)
  let s = Sim.Stats.summarize [ 2.0; -1.0; 0.5; -0.0; 1e300; -1e300 ] in
  checkf "min" (-1e300) s.Sim.Stats.min;
  checkf "max" 1e300 s.Sim.Stats.max;
  checkf "median" 0.25 s.Sim.Stats.median

let stats_log_histogram_rejects () =
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Stats.log_histogram: negative or NaN input -1")
    (fun () ->
      ignore (Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 2.0; -1.0 ]));
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Stats.log_histogram: negative or NaN input nan")
    (fun () ->
      ignore (Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ Float.nan ]));
  (* zero is fine: it lands in the first bucket *)
  let h = Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 0.0; 0.5; 50.0 ] in
  checkb "sub-1 samples in bucket 0" true
    (h.Sim.Stats.counts.(0) = 2 && h.Sim.Stats.counts.(1) = 1)

let percentile_edge_cases () =
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Stats.percentile: empty histogram") (fun () ->
      ignore
        (Sim.Stats.percentile
           (Sim.Stats.log_histogram ~base:10.0 ~buckets:4 []) 0.5));
  let h = Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 5.0 ] in
  Alcotest.check_raises "q above 1"
    (Invalid_argument "Stats.percentile: q=1.5 outside [0,1]") (fun () ->
      ignore (Sim.Stats.percentile h 1.5));
  Alcotest.check_raises "negative q"
    (Invalid_argument "Stats.percentile: q=-0.1 outside [0,1]") (fun () ->
      ignore (Sim.Stats.percentile h (-0.1)));
  Alcotest.check_raises "NaN q"
    (Invalid_argument "Stats.percentile: q=nan outside [0,1]") (fun () ->
      ignore (Sim.Stats.percentile h Float.nan));
  (* Single sample of 5: bucket 0 spans [0, base) = [0, 10), so every
     quantile interpolates inside [0, 10] (q=1 resolves to the upper
     edge). *)
  List.iter
    (fun q ->
      let v = Sim.Stats.percentile h q in
      checkb
        (Printf.sprintf "single sample: p%g inside its bucket" (q *. 100.0))
        true
        (v >= 0.0 && v <= 10.0))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* Exact bucket boundary: a point mass at base^2 = 100 lands in
     [100, 1000) — the inclusive lower edge — never in bucket 1, and
     p0 resolves to exactly the boundary. *)
  let hb = Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 100.0; 100.0 ] in
  checkf "boundary mass: p0 at the inclusive edge" 100.0
    (Sim.Stats.percentile hb 0.0);
  List.iter
    (fun q ->
      let v = Sim.Stats.percentile hb q in
      checkb
        (Printf.sprintf "boundary mass: p%g in [100, 1000]" (q *. 100.0))
        true
        (v >= 100.0 && v <= 1000.0))
    [ 0.0; 0.5; 1.0 ];
  (* Bucket 0 spans [0, base) despite its recorded lower edge of 1:
     sub-unit samples must resolve below base, starting at 0. *)
  let h0 = Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 0.0; 0.25; 0.5 ] in
  checkb "sub-unit mass: p0 at the true lower edge 0" true
    (Sim.Stats.percentile h0 0.0 = 0.0);
  checkb "sub-unit mass: p100 below base" true
    (Sim.Stats.percentile h0 1.0 <= 10.0);
  (* Interpolation is exact on a uniform two-bucket split. *)
  let h2 = Sim.Stats.log_histogram ~base:10.0 ~buckets:4 [ 5.0; 50.0 ] in
  checkf "two-sample median at the shared edge" 10.0
    (Sim.Stats.percentile h2 0.5)

let trace_series_names_sorted () =
  let t = Sim.Trace.create () in
  List.iter
    (fun i ->
      Sim.Trace.record t
        ~series:(Printf.sprintf "s%02d" i)
        ~time:0.0 (float_of_int i))
    [ 5; 3; 9; 1; 0; 8; 2; 7; 6; 4 ];
  checkb "names sorted regardless of registration order" true
    (Sim.Trace.series_names t
    = List.init 10 (fun i -> Printf.sprintf "s%02d" i));
  Sim.Trace.record t ~series:"s03" ~time:1.0 42.0;
  checkb "samples stay in time order per series" true
    (Sim.Trace.series t "s03" = [ (0.0, 3.0); (1.0, 42.0) ]);
  checkb "unknown series is empty" true (Sim.Trace.series t "zz" = [])

let suite =
  [
    ("prng deterministic", `Quick, prng_deterministic);
    ("prng different seeds", `Quick, prng_different_seeds);
    ("prng int range", `Quick, prng_int_range);
    ("prng int_in range", `Quick, prng_int_in_range);
    ("prng float range", `Quick, prng_float_range);
    ("prng gaussian moments", `Quick, prng_gaussian_moments);
    ("prng exponential mean", `Quick, prng_exponential_mean);
    ("prng split independent", `Quick, prng_split_independent);
    ("prng copy preserves", `Quick, prng_copy_preserves);
    ("prng shuffle is a permutation", `Quick, prng_shuffle_permutation);
    QCheck_alcotest.to_alcotest prng_lognormal_of_seed_equiv;
    QCheck_alcotest.to_alcotest prng_exponential_is_neg_mean_log_u;
    ("ring FIFO order", `Quick, ring_fifo_order);
    ("ring wraparound reads", `Quick, ring_wraparound);
    ("ring detach/transfer", `Quick, ring_detach_transfer);
    ("ring clear shrinks", `Quick, ring_clear_shrinks);
    ("stats summary basics", `Quick, stats_summary_basic);
    ("stats stddev", `Quick, stats_stddev);
    ("stats empty raises", `Quick, stats_empty_raises);
    ("stats quantile interpolation", `Quick, stats_quantile_interpolation);
    ("stats boxplot ordering", `Quick, stats_boxplot_order);
    ("stats log histogram", `Quick, stats_log_histogram);
    ("stats geometric mean", `Quick, stats_geometric_mean);
    ("engine time order", `Quick, engine_runs_in_time_order);
    ("engine FIFO ties", `Quick, engine_fifo_at_equal_times);
    ("engine schedule during run", `Quick, engine_schedule_during_run);
    ("engine rejects past", `Quick, engine_rejects_past);
    ("engine run_until", `Quick, engine_run_until);
    ("engine 5000-event stress", `Quick, engine_many_events_stress);
    ("trace roundtrip", `Quick, trace_roundtrip);
    ("trace integrate", `Quick, trace_integrate_step);
    ("trace integrate before first", `Quick, trace_integrate_before_first_sample);
    ("trace resample", `Quick, trace_resample);
    ("trace resample edge cases", `Quick, trace_resample_edges);
    ("trace integrate edge cases", `Quick, trace_integrate_edges);
    ("stats rejects NaN", `Quick, stats_nan_raises);
    ("stats numeric sort order", `Quick, stats_sorts_with_float_compare);
    ("log histogram rejects negatives", `Quick, stats_log_histogram_rejects);
    ("percentile edge cases", `Quick, percentile_edge_cases);
    ("trace series names sorted", `Quick, trace_series_names_sorted);
  ]
