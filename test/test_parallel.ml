(* The domain pool: ordering, exception barrier, and the guarantee the
   experiment harness rests on — parallel scheduler runs produce exactly
   the sequential results. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let map_preserves_order () =
  let input = Array.init 100 Fun.id in
  let out = Parallel.Pool.map ~jobs:4 (fun i -> i * i) input in
  Alcotest.check
    (Alcotest.array Alcotest.int)
    "squares in input order"
    (Array.init 100 (fun i -> i * i))
    out

let map_list_preserves_order () =
  let out =
    Parallel.Pool.map_list ~jobs:3 String.uppercase_ascii
      [ "a"; "b"; "c"; "d"; "e" ]
  in
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "upper-cased in order"
    [ "A"; "B"; "C"; "D"; "E" ]
    out

let jobs_one_runs_in_caller () =
  (* jobs=1 must not spawn domains: side effects happen in the calling
     domain, in input order. *)
  let seen = ref [] in
  let self = Domain.self () in
  let out =
    Parallel.Pool.map ~jobs:1
      (fun i ->
        checkb "same domain" true (Domain.self () = self);
        seen := i :: !seen;
        i + 1)
      (Array.init 10 Fun.id)
  in
  Alcotest.check
    (Alcotest.array Alcotest.int)
    "results" (Array.init 10 (fun i -> i + 1)) out;
  Alcotest.check
    (Alcotest.list Alcotest.int)
    "sequential order" (List.init 10 (fun i -> 9 - i)) !seen

let empty_input () =
  checki "empty maps to empty" 0
    (Array.length (Parallel.Pool.map ~jobs:4 Fun.id [||]))

exception Boom of int

let exception_propagates () =
  checkb "raises" true
    (try
       ignore
         (Parallel.Pool.map ~jobs:4
            (fun i -> if i = 17 then raise (Boom i) else i)
            (Array.init 64 Fun.id));
       false
     with Boom 17 -> true)

let first_failure_wins () =
  (* Every item fails; the lowest-indexed failure must be the one
     reported regardless of which domain hits it first. *)
  checkb "lowest index reported" true
    (try
       ignore
         (Parallel.Pool.map ~jobs:4
            (fun i ->
              (* Let later items fail fast so a racing domain records a
                 higher index first; the pool must still prefer index 0. *)
              if i = 0 then Unix.sleepf 0.02;
              raise (Boom i))
            (Array.init 16 Fun.id));
       false
     with Boom 0 -> true)

let invalid_jobs_rejected () =
  checkb "jobs=0 rejected" true
    (try
       ignore (Parallel.Pool.map ~jobs:0 Fun.id [| 1 |]);
       false
     with Invalid_argument _ -> true)

let parallel_equals_sequential_pure () =
  let input = Array.init 200 (fun i -> i * 37) in
  let f x = (x * x) + (x mod 7) in
  Alcotest.check
    (Alcotest.array Alcotest.int)
    "jobs=4 = jobs=1"
    (Parallel.Pool.map ~jobs:1 f input)
    (Parallel.Pool.map ~jobs:4 f input)

(* --- determinism: parallel experiment grids = sequential ------------- *)

let scheduler_grid () =
  (* A miniature fig12/fig13-style (seed x policy) grid. *)
  List.concat_map
    (fun seed ->
      List.map
        (fun policy -> (seed, policy))
        [ Sched.Policy.Static_x86_pair; Sched.Policy.Dynamic_balanced;
          Sched.Policy.Dynamic_unbalanced ])
    [ 1000; 1001 ]

let run_cell (seed, policy) =
  let r = Sched.Scheduler.run policy (Sched.Arrival.sustained ~seed ~jobs:6) in
  ( r.Sched.Scheduler.makespan,
    Array.to_list r.Sched.Scheduler.energy,
    r.Sched.Scheduler.migrations,
    r.Sched.Scheduler.completed )

let parallel_scheduler_runs_deterministic () =
  let grid = scheduler_grid () in
  let sequential = Parallel.Pool.map_list ~jobs:1 run_cell grid in
  let parallel = Parallel.Pool.map_list ~jobs:4 run_cell grid in
  List.iteri
    (fun i ((ms_s, e_s, mig_s, done_s), (ms_p, e_p, mig_p, done_p)) ->
      let name fmt = Printf.sprintf "cell %d %s" i fmt in
      Alcotest.check (Alcotest.float 0.0) (name "makespan") ms_s ms_p;
      Alcotest.check
        (Alcotest.list (Alcotest.float 0.0))
        (name "energy") e_s e_p;
      checki (name "migrations") mig_s mig_p;
      checki (name "completed") done_s done_p)
    (List.combine sequential parallel)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick map_preserves_order;
    Alcotest.test_case "map_list preserves order" `Quick map_list_preserves_order;
    Alcotest.test_case "jobs=1 runs in the caller" `Quick jobs_one_runs_in_caller;
    Alcotest.test_case "empty input" `Quick empty_input;
    Alcotest.test_case "exception propagates to caller" `Quick exception_propagates;
    Alcotest.test_case "lowest-indexed failure wins" `Quick first_failure_wins;
    Alcotest.test_case "jobs < 1 rejected" `Quick invalid_jobs_rejected;
    Alcotest.test_case "jobs=4 equals jobs=1 (pure)" `Quick
      parallel_equals_sequential_pure;
    Alcotest.test_case "parallel scheduler grid = sequential" `Slow
      parallel_scheduler_runs_deterministic;
  ]
