let checkb msg = Alcotest.check Alcotest.bool msg
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let power_affine () =
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  checkf "idle at 0" m.Machine.Power.cpu_idle_w
    (Machine.Power.cpu_power m ~utilization:0.0);
  checkf "max at 1" m.Machine.Power.cpu_max_w
    (Machine.Power.cpu_power m ~utilization:1.0);
  let mid = Machine.Power.cpu_power m ~utilization:0.5 in
  checkf "midpoint" ((m.Machine.Power.cpu_idle_w +. m.Machine.Power.cpu_max_w) /. 2.0) mid

let power_clamped () =
  let m = Machine.Server.xgene1.Machine.Server.power in
  checkf "clamp low" (Machine.Power.cpu_power m ~utilization:0.0)
    (Machine.Power.cpu_power m ~utilization:(-1.0));
  checkf "clamp high" (Machine.Power.cpu_power m ~utilization:1.0)
    (Machine.Power.cpu_power m ~utilization:2.0)

let power_system_includes_platform () =
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  checkf "platform adder" m.Machine.Power.platform_w
    (Machine.Power.system_power m ~utilization:0.3
    -. Machine.Power.cpu_power m ~utilization:0.3)

let power_figure11_envelope () =
  (* Figure 11's axes: x86 system power peaks above 100 W, ARM near 80 W. *)
  let x = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  let a = Machine.Server.xgene1.Machine.Server.power in
  checkb "x86 peak 100-130 W" true
    (let p = Machine.Power.system_power x ~utilization:1.0 in
     p > 100.0 && p < 130.0);
  checkb "arm peak 60-90 W" true
    (let p = Machine.Power.system_power a ~utilization:1.0 in
     p > 60.0 && p < 90.0)

let sensor_samples_at_rate () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let m = Machine.Server.xeon_e5_1650_v2.Machine.Server.power in
  Machine.Power.Sensor.attach engine trace m ~name:"n" ~hz:100.0 ~until:0.5
    ~utilization:(fun () -> 0.5);
  Sim.Engine.run engine;
  let samples = Sim.Trace.series trace "n.cpu_w" in
  checkb "~50 samples at 100 Hz over 0.5 s" true
    (List.length samples >= 50 && List.length samples <= 52);
  checkb "load series too" true (Sim.Trace.series trace "n.load" <> [])

let mcpat_projection () =
  let m = Machine.Server.xgene1.Machine.Server.power in
  let p = Machine.Mcpat.project_finfet m in
  checkf "cpu scaled by 1/10" (m.Machine.Power.cpu_max_w /. 10.0)
    p.Machine.Power.cpu_max_w;
  (* McPAT models the processor: board power is untouched. *)
  checkf "platform unchanged" m.Machine.Power.platform_w
    p.Machine.Power.platform_w

let interconnect_transfer_times () =
  let d = Machine.Interconnect.dolphin_pxh810 in
  let small = Machine.Interconnect.transfer_time d ~bytes:64 in
  let page = Machine.Interconnect.transfer_time d ~bytes:4096 in
  checkb "latency floor" true (small >= d.Machine.Interconnect.latency_s);
  checkb "bigger takes longer" true (page > small);
  (* 64 Gb/s: a 4 KiB page's serialization is ~0.5 us. *)
  checkb "page under 3us" true (page < 3e-6)

let interconnect_ethernet_slower () =
  let d = Machine.Interconnect.dolphin_pxh810 in
  let e = Machine.Interconnect.ethernet_10g in
  checkb "pcie faster" true
    (Machine.Interconnect.transfer_time d ~bytes:4096
    < Machine.Interconnect.transfer_time e ~bytes:4096)

let machine_specs_match_paper () =
  let x = Machine.Server.xeon_e5_1650_v2 in
  let a = Machine.Server.xgene1 in
  Alcotest.check Alcotest.int "xeon 6 cores" 6 x.Machine.Server.cores;
  Alcotest.check Alcotest.int "x-gene 8 cores" 8 a.Machine.Server.cores;
  checkf "xeon 3.5 GHz" 3.5e9 x.Machine.Server.cost.Isa.Cost_model.frequency_hz;
  checkf "x-gene 2.4 GHz" 2.4e9 a.Machine.Server.cost.Isa.Cost_model.frequency_hz;
  checkb "xeon more peak mips" true
    (Machine.Server.peak_mips x Isa.Cost_model.Compute
    > Machine.Server.peak_mips a Isa.Cost_model.Compute)

(* --- cluster topology ----------------------------------------------------- *)

module T = Machine.Topology

let topology_flat_matches_interconnect () =
  (* The flat topology is the pre-cluster model: every distinct pair
     sees exactly the paper's point-to-point interconnect numbers. *)
  let ic = Machine.Interconnect.ethernet_10g in
  let topo = T.flat ~nodes:4 ~interconnect:ic () in
  let p = T.path topo ~src:0 ~dst:3 in
  checkf "pair latency is the interconnect's" ic.Machine.Interconnect.latency_s
    p.T.latency_s;
  checkf "pair bandwidth too" ic.Machine.Interconnect.bandwidth_bps
    p.T.bandwidth_bps;
  checkf "page transfer time matches the two-node model"
    (Machine.Interconnect.page_transfer_time ic ~page_bytes:4096)
    (T.page_transfer_time topo ~src:1 ~dst:2 ~page_bytes:4096);
  checkf "batch transfer time too"
    (Machine.Interconnect.batch_transfer_time ic ~pages:16 ~page_bytes:4096)
    (T.batch_transfer_time topo ~src:1 ~dst:2 ~pages:16 ~page_bytes:4096)

let topology_paths_and_hops () =
  let topo = T.make ~racks:2 ~nodes_per_rack:4 () in
  Alcotest.check Alcotest.int "8 nodes" 8 (T.nodes topo);
  Alcotest.check Alcotest.int "2 racks" 2 (T.racks topo);
  Alcotest.check Alcotest.int "self: no hops" 0 (T.hops topo ~src:2 ~dst:2);
  Alcotest.check Alcotest.int "same rack: one switch" 1
    (T.hops topo ~src:0 ~dst:3);
  Alcotest.check Alcotest.int "cross rack: three switches" 3
    (T.hops topo ~src:0 ~dst:4);
  let local = topo.T.local and agg = topo.T.aggregation in
  checkf "same-rack latency is one local hop" local.T.latency_s
    (T.path topo ~src:0 ~dst:3).T.latency_s;
  checkf "cross-rack latency sums the hops"
    ((2.0 *. local.T.latency_s) +. agg.T.latency_s)
    (T.path topo ~src:0 ~dst:4).T.latency_s;
  checkf "bandwidth is the bottleneck hop"
    (Float.min local.T.bandwidth_bps agg.T.bandwidth_bps)
    (T.path topo ~src:0 ~dst:4).T.bandwidth_bps;
  checkf "self path is free" 0.0 (T.path topo ~src:5 ~dst:5).T.latency_s;
  (* The head sits beside rack 0's ToR: local hop to rack 0, the full
     fabric to anyone else. *)
  checkf "head to rack 0 is local" local.T.latency_s
    (T.head_path topo ~dst:1).T.latency_s;
  checkb "head to rack 1 crosses the aggregation" true
    ((T.head_path topo ~dst:4).T.latency_s > local.T.latency_s);
  checkf "min path latency is the same-rack floor" local.T.latency_s
    (T.min_path_latency topo)

let topology_mixes () =
  let alt = T.make ~mix:T.Alternate ~racks:2 ~nodes_per_rack:4 () in
  Alcotest.check Alcotest.int "alternate: half x86" 4
    (T.isa_count alt Isa.Arch.X86_64);
  Alcotest.check Alcotest.int "alternate: half arm" 4
    (T.isa_count alt Isa.Arch.Arm64);
  let ir = T.make ~mix:T.Isa_racks ~racks:2 ~nodes_per_rack:4 () in
  checkb "isa-racks: rack 0 is homogeneous" true
    (let a = (T.server ir 0).Machine.Server.arch in
     List.for_all (fun i -> (T.server ir i).Machine.Server.arch = a) [ 1; 2; 3 ]);
  checkb "isa-racks: rack 1 is the other ISA" true
    ((T.server ir 0).Machine.Server.arch <> (T.server ir 4).Machine.Server.arch);
  let x86 = T.make ~mix:T.X86_only ~racks:1 ~nodes_per_rack:4 () in
  Alcotest.check Alcotest.int "x86-only has no arm" 0
    (T.isa_count x86 Isa.Arch.Arm64);
  checkb "mix names round-trip" true
    (List.for_all
       (fun m -> T.mix_of_name (T.mix_name m) = Some m)
       [ T.Alternate; T.Isa_racks; T.X86_only; T.Arm_only ])

let topology_validation_raises () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "zero racks rejected" true
    (raises (fun () -> T.make ~racks:0 ~nodes_per_rack:4 ()));
  checkb "zero nodes per rack rejected" true
    (raises (fun () -> T.make ~racks:2 ~nodes_per_rack:0 ()));
  checkb "negative link latency rejected" true
    (raises (fun () ->
         T.make ~local:{ T.latency_s = -1.0; bandwidth_bps = 1e9 } ~racks:1
           ~nodes_per_rack:2 ()));
  checkb "non-finite bandwidth rejected" true
    (raises (fun () ->
         T.make
           ~aggregation:{ T.latency_s = 1e-6; bandwidth_bps = Float.nan }
           ~racks:2 ~nodes_per_rack:2 ()));
  checkb "out-of-range node rejected" true
    (raises (fun () -> ignore (T.server (T.make ~racks:1 ~nodes_per_rack:2 ()) 5)))

let suite =
  [
    ("power affine in utilization", `Quick, power_affine);
    ("power clamps utilization", `Quick, power_clamped);
    ("system power includes platform", `Quick, power_system_includes_platform);
    ("power envelopes match Figure 11", `Quick, power_figure11_envelope);
    ("sensor samples at 100 Hz", `Quick, sensor_samples_at_rate);
    ("mcpat finfet projection", `Quick, mcpat_projection);
    ("interconnect transfer times", `Quick, interconnect_transfer_times);
    ("pcie beats ethernet", `Quick, interconnect_ethernet_slower);
    ("machine specs match the paper", `Quick, machine_specs_match_paper);
    ("topology: flat matches the interconnect", `Quick,
     topology_flat_matches_interconnect);
    ("topology: paths, hops and the head", `Quick, topology_paths_and_hops);
    ("topology: ISA mixes", `Quick, topology_mixes);
    ("topology: validation raises", `Quick, topology_validation_raises);
  ]
