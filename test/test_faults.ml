(* Failure injection: corrupted metadata, invalid requests, and
   unschedulable work must fail loudly and gracefully — never silently
   migrate wrong state. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let binary = lazy (Hetmig.Het.compile_benchmark Workload.Spec.EP Workload.Spec.A)

(* Rebuild a toolchain output with tampered destination stackmaps. *)
let tamper_stackmaps (tc : Compiler.Toolchain.t) ~victim_arch ~drop_var =
  let isas =
    List.map
      (fun (per : Compiler.Toolchain.per_isa) ->
        if per.Compiler.Toolchain.arch <> victim_arch then per
        else
          {
            per with
            Compiler.Toolchain.stackmaps =
              List.map
                (fun (e : Compiler.Stackmap.entry) ->
                  {
                    e with
                    Compiler.Stackmap.live =
                      List.filter
                        (fun (name, _) -> name <> drop_var)
                        e.Compiler.Stackmap.live;
                  })
                per.Compiler.Toolchain.stackmaps;
          })
      tc.Compiler.Toolchain.isas
  in
  { tc with Compiler.Toolchain.isas }

let pick_live_var tc =
  (* Any variable live at some reachable migration point. *)
  let sites = Runtime.Interp.reachable_mig_sites tc in
  List.find_map
    (fun (fname, mig_id) ->
      match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
      | None -> None
      | Some st ->
        let inner = Runtime.Thread_state.innermost st in
        (match Runtime.Interp.live_values tc st inner with
        | (name, _) :: _ -> Some (name, fname, mig_id)
        | [] -> None))
    sites

let corrupted_dest_stackmap_rejected () =
  let tc = Lazy.force binary in
  match pick_live_var tc with
  | None -> Alcotest.fail "no live variable found"
  | Some (var, fname, mig_id) ->
    let bad = tamper_stackmaps tc ~victim_arch:Isa.Arch.Arm64 ~drop_var:var in
    (match Runtime.Interp.state_at bad Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> Alcotest.fail "unreached"
    | Some st -> begin
      (* Transformation consults the (corrupted) ARM metadata as the
         destination: it must refuse, not silently drop the value. *)
      match Runtime.Transform.transform bad st with
      | Error _ -> ()
      | Ok (dst, _) ->
        (* If it succeeded despite the tampering, verification must catch
           the lost value. *)
        checkb "verification catches the corruption" true
          (Runtime.Transform.verify bad st dst <> Ok ())
    end)

let corrupted_source_stackmap_rejected () =
  let tc = Lazy.force binary in
  match pick_live_var tc with
  | None -> Alcotest.fail "no live variable found"
  | Some (var, fname, mig_id) ->
    let bad = tamper_stackmaps tc ~victim_arch:Isa.Arch.X86_64 ~drop_var:var in
    (match Runtime.Interp.state_at bad Isa.Arch.X86_64 ~fname ~mig_id with
    | None -> Alcotest.fail "unreached"
    | Some st -> begin
      match Runtime.Transform.transform bad st with
      | Error _ -> ()
      | Ok (dst, _) ->
        checkb "verification catches the corruption" true
          (Runtime.Transform.verify bad st dst <> Ok ())
    end)

let migrate_to_unknown_node_rejected () =
  let cluster = Hetmig.Het.make_cluster () in
  let spec = Workload.Spec.spec Workload.Spec.EP Workload.Spec.A in
  let proc =
    Hetmig.Het.deploy cluster (Lazy.force binary) ~spec ~threads:1 ~node:0 ()
  in
  checkb "unknown node raises" true
    (try
       Hetmig.Het.migrate cluster proc ~to_node:7;
       false
     with Invalid_argument _ -> true)

let oversized_job_never_admitted () =
  (* A job wider than any machine cannot be placed; the scheduler must
     terminate and report the shortfall rather than hang or lie. *)
  let fat =
    Sched.Job.make ~jid:0
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:64 ~arrival:0.0
  in
  let ok =
    Sched.Job.make ~jid:1
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:1 ~arrival:0.0
  in
  let r = Sched.Scheduler.run Sched.Policy.Static_x86_pair [ fat; ok ] in
  checki "only the feasible job completes" 1 r.Sched.Scheduler.completed

let invalid_job_parameters_rejected () =
  checkb "zero threads" true
    (try
       ignore
         (Sched.Job.make ~jid:0
            ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
            ~threads:0 ~arrival:0.0);
       false
     with Invalid_argument _ -> true);
  checkb "negative arrival" true
    (try
       ignore
         (Sched.Job.make ~jid:0
            ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
            ~threads:1 ~arrival:(-1.0));
       false
     with Invalid_argument _ -> true)

let negative_message_rejected () =
  let engine = Sim.Engine.create () in
  let bus = Kernel.Message.create engine Machine.Interconnect.dolphin_pxh810 in
  checkb "negative size rejected" true
    (try
       Kernel.Message.send bus Kernel.Message.Page_request ~bytes:(-1)
         ~on_delivery:(fun () -> ())
         ();
       false
     with Invalid_argument _ -> true)

let zero_budget_rejected () =
  checkb "instrument with budget 0" true
    (try
       ignore
         (Compiler.Migration_points.instrument ~budget:0
            (Workload.Programs.program Workload.Spec.EP Workload.Spec.A));
       false
     with Invalid_argument _ -> true)

(* --- fault plans: invalid plans fail loudly ------------------------------- *)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let invalid_plan_rejected () =
  checkb "drop probability above 1" true
    (raises_invalid (fun () ->
         ignore (Faults.Plan.uniform ~drop:1.5 ())));
  checkb "negative delay latency" true
    (raises_invalid (fun () ->
         ignore
           (Faults.Plan.make
              ~messages:
                [ { Faults.Plan.kind = "*"; drop = 0.0; delay = 0.1;
                    delay_s = -1.0 } ]
              ())));
  checkb "duplicate message kind" true
    (raises_invalid (fun () ->
         let entry =
           { Faults.Plan.kind = "*"; drop = 0.1; delay = 0.0; delay_s = 0.0 }
         in
         ignore (Faults.Plan.make ~messages:[ entry; entry ] ())));
  checkb "negative crash time" true
    (raises_invalid (fun () ->
         ignore
           (Faults.Plan.make ~crashes:[ { Faults.Plan.at = -5.0; node = 0 } ] ())))

let zero_retry_budget_rejected () =
  checkb "retry budget 0 raises (would mean never even try)" true
    (raises_invalid (fun () ->
         ignore (Faults.Plan.make ~retry_budget:0 ())))

let unknown_message_kind_rejected () =
  let plan =
    Faults.Plan.make
      ~messages:
        [ { Faults.Plan.kind = "no_such_kind"; drop = 0.5; delay = 0.0;
            delay_s = 0.0 } ]
      ()
  in
  checkb "booting an ensemble under the plan raises" true
    (raises_invalid (fun () ->
         ignore (Hetmig.Het.make_cluster ~faults:plan ())))

let crash_unknown_node_rejected () =
  let plan =
    Faults.Plan.make ~crashes:[ { Faults.Plan.at = 1.0; node = 5 } ] ()
  in
  checkb "plan crashing node 5 of a 2-node cluster raises" true
    (raises_invalid (fun () ->
         ignore (Hetmig.Het.make_cluster ~faults:plan ())));
  let cluster = Hetmig.Het.make_cluster () in
  checkb "direct crash of an unknown node raises" true
    (raises_invalid (fun () ->
         ignore (Kernel.Popcorn.crash cluster.Hetmig.Het.pop ~node:7)))

(* --- message retry discipline ---------------------------------------------- *)

let thread_migration_kind =
  Kernel.Message.kind_to_string Kernel.Message.Thread_migration

let message_retry_exhaustion () =
  (* Drop every attempt: the send burns its whole budget, then fails. *)
  let plan =
    Faults.Plan.make ~seed:7
      ~messages:
        [ { Faults.Plan.kind = "*"; drop = 1.0; delay = 0.0; delay_s = 0.0 } ]
      ~retry_budget:3 ()
  in
  let engine = Sim.Engine.create () in
  let inj =
    Faults.Injector.create plan ~kinds:[ thread_migration_kind ]
  in
  let bus =
    Kernel.Message.create ~faults:inj engine Machine.Interconnect.dolphin_pxh810
  in
  let delivered = ref 0 and failed = ref 0 in
  Kernel.Message.send bus Kernel.Message.Thread_migration ~bytes:4096
    ~on_failure:(fun () -> incr failed)
    ~on_delivery:(fun () -> incr delivered)
    ();
  Sim.Engine.run engine;
  checki "on_failure fired once" 1 !failed;
  checki "never delivered" 0 !delivered;
  let stats =
    Kernel.Message.retry_stats bus Kernel.Message.Thread_migration
  in
  checki "three physical attempts" 3 stats.Kernel.Message.attempts;
  checki "all attempts dropped" 3 stats.Kernel.Message.dropped;
  checki "two retransmissions" 2 stats.Kernel.Message.retried;
  checki "one message abandoned" 1 stats.Kernel.Message.failed;
  checki "injector agrees" 3 (Faults.Injector.drops_injected inj)

(* --- migration abort and rollback ------------------------------------------ *)

let migration_abort_rolls_back () =
  (* Lose every thread-migration handoff: the migration must abort and
     the thread must finish on its source node with its pre-transform
     continuation, as if it had never tried. *)
  let plan =
    Faults.Plan.make ~seed:11
      ~messages:
        [ { Faults.Plan.kind = thread_migration_kind; drop = 1.0;
            delay = 0.0; delay_s = 0.0 } ]
      ~retry_budget:2 ()
  in
  let cluster = Hetmig.Het.make_cluster ~faults:plan () in
  let spec = Workload.Spec.spec Workload.Spec.EP Workload.Spec.A in
  let proc =
    Hetmig.Het.deploy cluster (Lazy.force binary) ~spec ~threads:1 ~node:0 ()
  in
  let aborts = ref 0 in
  Kernel.Popcorn.on_migration_abort cluster.Hetmig.Het.pop
    (fun _proc _th ~dest -> if dest = 1 then incr aborts);
  Hetmig.Het.start cluster proc;
  Hetmig.Het.migrate cluster proc ~to_node:1;
  Hetmig.Het.run cluster;
  let th = List.hd proc.Kernel.Process.threads in
  checkb "thread completed" true (th.Kernel.Process.status = Kernel.Process.Done);
  checkb "process exited" true (proc.Kernel.Process.finished_at <> None);
  checki "still on the source node" 0 th.Kernel.Process.node;
  checki "no successful migration" 0 th.Kernel.Process.migrations;
  checkb "at least one rolled-back migration" true
    (th.Kernel.Process.aborted_migrations >= 1);
  checki "abort hook saw them all" th.Kernel.Process.aborted_migrations !aborts;
  checkb "continuation carries no destination stacks" true
    (List.for_all
       (fun (k : Kernel.Continuation.kernel_stack) ->
         k.Kernel.Continuation.node <> 1)
       (Kernel.Continuation.stacks th.Kernel.Process.continuation))

(* --- scheduler under faults ------------------------------------------------- *)

let sustained_jobs ~seed n = Sched.Arrival.sustained ~seed ~jobs:n

let zero_plan_byte_identical () =
  (* The zero plan must take the exact fault-free code path: same event
     stream, same floats, same everything. *)
  List.iter
    (fun policy ->
      let jobs = sustained_jobs ~seed:3 8 in
      let plain = Sched.Scheduler.run policy jobs in
      let zeroed = Sched.Scheduler.run ~faults:Faults.Plan.zero policy jobs in
      checkb
        (Printf.sprintf "%s: zero plan result identical"
           (Sched.Policy.name policy))
        true (plain = zeroed))
    Sched.Policy.all

let faulty_run_deterministic () =
  let plan = Faults.Plan.uniform ~seed:5 ~drop:0.2 () in
  let jobs = sustained_jobs ~seed:4 8 in
  let a = Sched.Scheduler.run ~faults:plan Sched.Policy.Dynamic_balanced jobs in
  let b = Sched.Scheduler.run ~faults:plan Sched.Policy.Dynamic_balanced jobs in
  checkb "same plan + seed, bit-identical results" true (a = b)

let crash_reclaims_orphans () =
  (* Crash the second node mid-run under every policy: jobs must be
     re-admitted or failed, never lost, and the books must balance. *)
  let plan =
    Faults.Plan.make ~seed:9 ~crashes:[ { Faults.Plan.at = 30.0; node = 1 } ] ()
  in
  List.iter
    (fun policy ->
      let jobs = sustained_jobs ~seed:6 6 in
      let r = Sched.Scheduler.run ~faults:plan policy jobs in
      checki
        (Printf.sprintf "%s: completed + rejected + failed = submitted"
           (Sched.Policy.name policy))
        (List.length jobs)
        (r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected
        + r.Sched.Scheduler.failed))
    Sched.Policy.all

(* --- property: migration retry is semantics-preserving ---------------------- *)

let retry_roundtrip_prop =
  QCheck.Test.make
    ~name:
      "random programs: an aborted-then-retried migration equals a fault-free one"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = Gen.random_program seed in
      let tc = Compiler.Toolchain.compile ~budget:1_000_000 prog in
      List.for_all
        (fun (fname, mig_id) ->
          match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
          | None -> true
          | Some src -> begin
            (* First attempt: transformed, then the handoff is lost and
               the result discarded (rollback leaves [src] untouched). *)
            match Runtime.Transform.transform tc src with
            | Error _ -> false
            | Ok (aborted, _) -> begin
              (* Retry from the rolled-back state. *)
              match Runtime.Transform.transform tc src with
              | Error _ -> false
              | Ok (retried, _) ->
                Runtime.Thread_state.depth aborted
                = Runtime.Thread_state.depth retried
                && Runtime.Transform.verify tc src retried = Ok ()
                && (match Runtime.Transform.transform tc retried with
                   | Error _ -> false
                   | Ok (back, _) ->
                     Runtime.Transform.verify tc src back = Ok ())
            end
          end)
        (Runtime.Interp.reachable_mig_sites tc))

(* --- property: job accounting balances under any fault rate ----------------- *)

let accounting_prop =
  QCheck.Test.make
    ~name:"job accounting: completed + rejected + failed = submitted"
    ~count:10
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, severity) ->
      let rate = [| 0.0; 0.05; 0.2 |].(severity) in
      let faults =
        if rate = 0.0 then None
        else
          Some
            (Faults.Plan.make ~seed
               ~messages:
                 [ { Faults.Plan.kind = "*"; drop = rate; delay = rate;
                     delay_s = 100e-6 } ]
               ~page_timeout_rate:(rate /. 2.0)
               ~crashes:
                 (if severity = 2 then [ { Faults.Plan.at = 30.0; node = 1 } ]
                  else [])
               ())
      in
      let jobs = sustained_jobs ~seed 6 in
      List.for_all
        (fun policy ->
          let r = Sched.Scheduler.run ?faults policy jobs in
          r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected
          + r.Sched.Scheduler.failed
          = List.length jobs)
        Sched.Policy.all)

let suite =
  [
    ("corrupted destination stackmap rejected", `Quick,
     corrupted_dest_stackmap_rejected);
    ("corrupted source stackmap rejected", `Quick,
     corrupted_source_stackmap_rejected);
    ("migration to unknown node rejected", `Quick,
     migrate_to_unknown_node_rejected);
    ("oversized job never admitted", `Quick, oversized_job_never_admitted);
    ("invalid job parameters rejected", `Quick, invalid_job_parameters_rejected);
    ("negative message size rejected", `Quick, negative_message_rejected);
    ("zero instrumentation budget rejected", `Quick, zero_budget_rejected);
    ("invalid fault plans rejected", `Quick, invalid_plan_rejected);
    ("zero retry budget rejected", `Quick, zero_retry_budget_rejected);
    ("unknown message kind in plan rejected", `Quick,
     unknown_message_kind_rejected);
    ("crash targeting unknown node rejected", `Quick,
     crash_unknown_node_rejected);
    ("message retry budget exhaustion", `Quick, message_retry_exhaustion);
    ("migration abort rolls back to source", `Quick, migration_abort_rolls_back);
    ("zero fault plan is byte-identical", `Quick, zero_plan_byte_identical);
    ("faulty runs are deterministic", `Quick, faulty_run_deterministic);
    ("node crash re-admits or fails orphans", `Quick, crash_reclaims_orphans);
    QCheck_alcotest.to_alcotest retry_roundtrip_prop;
    QCheck_alcotest.to_alcotest accounting_prop;
  ]
