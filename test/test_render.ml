(* Rendering / pretty-printing coverage: deterministic, well-formed
   artifacts (ELF dumps, program printing, scheduler results). *)

let checkb msg = Alcotest.check Alcotest.bool msg

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    if i + m > n then false
    else if String.sub haystack i m = needle then true
    else go (i + 1)
  in
  go 0

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let binary = lazy (Hetmig.Het.compile_benchmark Workload.Spec.EP Workload.Spec.A)

let elf_headers_dump () =
  let tc = Lazy.force binary in
  List.iter
    (fun arch ->
      let per = Compiler.Toolchain.for_arch tc arch in
      let text = render (fun ppf -> Binary.Elf.pp_headers ppf per.Compiler.Toolchain.elf) in
      checkb "mentions ELF64" true (contains text "ELF64");
      checkb "has a LOAD segment" true (contains text "LOAD");
      checkb "names .text" true (contains text ".text"))
    Isa.Arch.all

let elf_machine_names_differ () =
  let tc = Lazy.force binary in
  let dump arch =
    render (fun ppf ->
        Binary.Elf.pp_headers ppf
          (Compiler.Toolchain.for_arch tc arch).Compiler.Toolchain.elf)
  in
  checkb "AArch64 labelled" true (contains (dump Isa.Arch.Arm64) "AArch64");
  checkb "X86-64 labelled" true (contains (dump Isa.Arch.X86_64) "X86-64")

let prog_pp_roundtrippable () =
  let prog = Workload.Programs.program Workload.Spec.CG Workload.Spec.A in
  let f = Ir.Prog.find_func prog "conj_grad" in
  let text = render (fun ppf -> Ir.Prog.pp_func ppf f) in
  checkb "names the function" true (contains text "func conj_grad");
  checkb "shows calls with site ids" true (contains text "call#0 cg_dot");
  checkb "shows loops" true (contains text "loop 25");
  (* Deterministic. *)
  Alcotest.check Alcotest.string "stable" text
    (render (fun ppf -> Ir.Prog.pp_func ppf f))

let thread_state_pp () =
  let tc = Lazy.force binary in
  let fname, mig_id = List.hd (Runtime.Interp.reachable_mig_sites tc) in
  match Runtime.Interp.state_at tc Isa.Arch.X86_64 ~fname ~mig_id with
  | None -> Alcotest.fail "unreached"
  | Some st ->
    let text = render (fun ppf -> Runtime.Thread_state.pp ppf st) in
    checkb "dumps frames" true (contains text "frames:");
    checkb "shows the suspension site" true (contains text "mig#")

let scheduler_result_pp () =
  let r =
    Sched.Scheduler.run Sched.Policy.Static_x86_pair
      (Sched.Arrival.sustained ~seed:31 ~jobs:3)
  in
  let text = render (fun ppf -> Sched.Scheduler.pp_result ppf r) in
  checkb "names the policy" true (contains text "static-x86x2");
  checkb "reports makespan" true (contains text "makespan");
  checkb "reports jobs" true (contains text "jobs=3")

let boxplot_pp () =
  let b = Sim.Stats.boxplot [ 1.0; 2.0; 3.0 ] in
  let text = render (fun ppf -> Sim.Stats.pp_boxplot ppf b) in
  checkb "five-number summary" true
    (contains text "min=" && contains text "q1=" && contains text "med="
    && contains text "q3=" && contains text "max=")

let address_space_pp () =
  let tc = Lazy.force binary in
  let engine = Sim.Engine.create () in
  let pop =
    Kernel.Popcorn.create engine
      ~machines:[ Machine.Server.xeon_e5_1650_v2; Machine.Server.xgene1 ] ()
  in
  let image =
    Kernel.Loader.load tc ~dsm:pop.Kernel.Popcorn.dsm ~node:0 ~slot:0
      ~heap_bytes:(1 lsl 16)
  in
  let text =
    render (fun ppf -> Memsys.Address_space.pp ppf image.Kernel.Loader.aspace)
  in
  checkb "lists text mapping" true (contains text ".text");
  checkb "lists stack" true (contains text "[stack]");
  checkb "lists heap" true (contains text "[heap]");
  checkb "executable protection shown" true (contains text "r-x")

let machine_pp () =
  let text = render (fun ppf -> Machine.Server.pp ppf Machine.Server.xgene1) in
  checkb "names the part" true (contains text "X-Gene");
  checkb "core count" true (contains text "8 cores")

let suite =
  [
    ("elf header dumps", `Quick, elf_headers_dump);
    ("elf machine names per ISA", `Quick, elf_machine_names_differ);
    ("program pretty-printing", `Quick, prog_pp_roundtrippable);
    ("thread state dump", `Quick, thread_state_pp);
    ("scheduler result rendering", `Quick, scheduler_result_pp);
    ("boxplot rendering", `Quick, boxplot_pp);
    ("address space dump", `Quick, address_space_pp);
    ("machine description", `Quick, machine_pp);
  ]
