(* The hetmig lint subsystem: diagnostics, the five analysis passes, the
   vector-clock race detector, and the seeded-corruption proofs that each
   pass can actually fail. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checks msg = Alcotest.check Alcotest.string msg

module D = Analysis.Diagnostic

let has_rule rule ds = List.exists (fun (d : D.t) -> d.D.rule = rule) ds
let count_rule rule ds =
  List.length (List.filter (fun (d : D.t) -> d.D.rule = rule) ds)

(* --- diagnostics core --------------------------------------------------- *)

let diagnostic_render () =
  let d =
    D.make ~rule:"stackmap-missing-entry" ~severity:D.Error ~prog:"cg.A"
      ~func:"conj_grad" ~site:"call:0" "no entry"
  in
  checks "human line" "error stackmap-missing-entry cg.A/conj_grad@call:0: no entry"
    (Format.asprintf "%a" D.pp d);
  checks "json object"
    "{\"rule\":\"stackmap-missing-entry\",\"severity\":\"error\",\"prog\":\"cg.A\",\"func\":\"conj_grad\",\"site\":\"call:0\",\"message\":\"no entry\"}"
    (D.to_json d);
  let bare = D.make ~rule:"r" ~severity:D.Info ~prog:"p" "m \"q\"\n" in
  checks "null fields and escaping"
    "{\"rule\":\"r\",\"severity\":\"info\",\"prog\":\"p\",\"func\":null,\"site\":null,\"message\":\"m \\\"q\\\"\\n\"}"
    (D.to_json bare)

let diagnostic_report_deterministic () =
  let d1 = D.make ~rule:"b" ~severity:D.Error ~prog:"z" "late" in
  let d2 = D.make ~rule:"a" ~severity:D.Warning ~prog:"a" "early" in
  checks "order independent" (D.report_to_json [ d1; d2 ])
    (D.report_to_json [ d2; d1 ]);
  checki "errors counted" 1 (D.errors [ d1; d2 ]);
  checki "warnings counted" 1 (D.warnings [ d1; d2 ])

(* --- race detector ------------------------------------------------------ *)

let acc u page write = Analysis.Race.Access { unit_ = u; page; write }
let sync src dst = Analysis.Race.Sync { src; dst }
let detect = Analysis.Race.detect

let race_basic () =
  checki "write/write unordered" 1
    (List.length (detect ~units:2 [ acc 0 7 true; acc 1 7 true ]));
  checki "read/read never races" 0
    (List.length (detect ~units:2 [ acc 0 7 false; acc 1 7 false ]));
  checki "distinct pages don't race" 0
    (List.length (detect ~units:2 [ acc 0 7 true; acc 1 8 true ]));
  checki "same unit is program-ordered" 0
    (List.length (detect ~units:2 [ acc 0 7 true; acc 0 7 true ]))

let race_sync_edges () =
  checki "message orders the pair" 0
    (List.length (detect ~units:2 [ acc 0 7 true; sync 0 1; acc 1 7 true ]));
  checki "transitive through a middleman" 0
    (List.length
       (detect ~units:3
          [ acc 0 7 true; sync 0 1; sync 1 2; acc 2 7 true ]));
  checki "edge in the wrong direction doesn't order" 1
    (List.length (detect ~units:2 [ acc 0 7 true; sync 1 0; acc 1 7 true ]));
  (* The sender keeps running after the send: its later accesses are NOT
     ordered before the receiver's. *)
  checki "post-send write still races" 1
    (List.length (detect ~units:2 [ sync 0 1; acc 0 7 true; acc 1 7 true ]))

let race_read_write () =
  checki "unordered read then write races" 1
    (List.length (detect ~units:2 [ acc 0 7 false; acc 1 7 true ]));
  checki "unordered write then read races" 1
    (List.length (detect ~units:2 [ acc 0 7 true; acc 1 7 false ]));
  let r =
    List.hd (detect ~units:2 [ acc 0 7 false; acc 1 7 true ])
  in
  checki "prior access index" 0 r.Analysis.Race.first_index;
  checki "racing access index" 1 r.Analysis.Race.second_index;
  checkb "prior was a read" true (not r.Analysis.Race.first_write)

let race_report_once_per_page () =
  let log =
    [ acc 0 7 true; acc 1 7 true; acc 0 7 true; acc 1 7 true; acc 1 9 true;
      acc 0 9 true ]
  in
  checki "one report per racy page" 2 (List.length (detect ~units:2 log))

let race_rejects_bad_units () =
  Alcotest.check_raises "unit out of range"
    (Invalid_argument "Race.detect: unit 5 out of range") (fun () ->
      ignore (detect ~units:2 [ acc 5 0 true ]))

(* --- pass 1: IR well-formedness ---------------------------------------- *)

(* Build IR records directly so ill-formed shapes the safe constructors
   reject still reach the linter. *)
let raw_func ?(params = []) ?(is_library = false) name body =
  { Ir.Prog.fname = name; params; body; is_leaf = false; is_library }

let raw_prog ?(globals = []) name funcs entry =
  {
    Ir.Prog.name;
    funcs = List.map (fun (f : Ir.Prog.func) -> (f.Ir.Prog.fname, f)) funcs;
    globals;
    entry;
  }

let v ?(init = Ir.Prog.Scalar) vname ty = { Ir.Prog.vname; ty; init }

let ir_detects_corruptions () =
  let callee =
    raw_func "helper" ~params:[ v "x" Ir.Ty.I64 ] [ Ir.Prog.Use "x" ]
  in
  let bad_body =
    [
      Ir.Prog.Use "ghost";
      Ir.Prog.Def (v "a" Ir.Ty.I64);
      Ir.Prog.Def (v "p" ~init:(Ir.Prog.Ptr_to_global "nosuch") Ir.Ty.I32);
      Ir.Prog.Call { site_id = 0; callee = "helper"; args = [ "a"; "a" ] };
      Ir.Prog.Call { site_id = 0; callee = "missing"; args = [] };
      Ir.Prog.Loop { trips = 0; body = [ Ir.Prog.Use "a" ] };
    ]
  in
  let prog = raw_prog "bad" [ raw_func "main" bad_body; callee ] "main" in
  let ds = Analysis.Ir_check.check prog in
  checkb "use before def" true (has_rule "ir-undefined-use" ds);
  checkb "pointer typed non-Ptr" true (has_rule "ir-pointer-type" ds);
  checkb "unknown global" true (has_rule "ir-unknown-global" ds);
  checkb "arity mismatch" true (has_rule "ir-call-arity" ds);
  checkb "unknown callee" true (has_rule "ir-unknown-callee" ds);
  checkb "duplicate site id" true (has_rule "ir-duplicate-site" ds);
  checkb "non-positive loop" true (has_rule "ir-loop-trips" ds);
  let no_entry = raw_prog "noent" [ callee ] "main" in
  checkb "missing entry" true
    (has_rule "ir-missing-entry" (Analysis.Ir_check.check no_entry))

let ir_arg_types_and_reachability () =
  let callee =
    raw_func "helper" ~params:[ v "x" Ir.Ty.F64 ] [ Ir.Prog.Use "x" ]
  in
  let orphan = raw_func "orphan" [ Ir.Prog.Work { instructions = 1; category = Isa.Cost_model.Mixed; memory_touched = 0 } ] in
  let main =
    raw_func "main"
      [
        Ir.Prog.Def (v "i" Ir.Ty.I64);
        Ir.Prog.Call { site_id = 0; callee = "helper"; args = [ "i" ] };
      ]
  in
  let ds = Analysis.Ir_check.check (raw_prog "p" [ main; callee; orphan ] "main") in
  checkb "arg/param type clash" true (has_rule "ir-call-arg-type" ds);
  checkb "orphan flagged unreachable" true (has_rule "ir-unreachable-function" ds);
  let unreachable =
    List.find (fun (d : D.t) -> d.D.rule = "ir-unreachable-function") ds
  in
  checkb "unreachable is a warning, not an error" true
    (unreachable.D.severity = D.Warning)

(* --- passes 2-4: seeded corruption of a compiled binary ----------------- *)

let cg_binary = lazy (Hetmig.Het.compile_benchmark Workload.Spec.CG Workload.Spec.A)

let first_isa (b : Compiler.Toolchain.t) = List.hd b.Compiler.Toolchain.isas
let second_isa (b : Compiler.Toolchain.t) =
  List.nth b.Compiler.Toolchain.isas 1

let stackmap_drop_entry_detected () =
  let b = Lazy.force cg_binary in
  let per = first_isa b in
  let corrupted =
    { per with Compiler.Toolchain.stackmaps = List.tl per.Compiler.Toolchain.stackmaps }
  in
  let clean =
    Analysis.Stackmap_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog per
  in
  checki "clean binary has no stackmap diagnostics" 0 (List.length clean);
  let ds =
    Analysis.Stackmap_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog
      corrupted
  in
  checkb "dropped entry detected" true (has_rule "stackmap-missing-entry" ds);
  let cross = Analysis.Stackmap_check.check_pair ~label:"cg.A" corrupted (second_isa b) in
  checkb "cross-ISA site mismatch reported" true
    (has_rule "stackmap-site-mismatch" cross)

let stackmap_bad_location_detected () =
  let b = Lazy.force cg_binary in
  let per = first_isa b in
  let arch = per.Compiler.Toolchain.arch in
  (* Re-home the first slot-resident value 4 bytes off: misaligned and in
     disagreement with the backend's frame layout. *)
  let tampered = ref false in
  let stackmaps =
    List.map
      (fun (e : Compiler.Stackmap.entry) ->
        if !tampered then e
        else
          let live =
            List.map
              (fun (name, (tl : Compiler.Stackmap.ty_loc)) ->
                match tl.Compiler.Stackmap.loc with
                | Compiler.Backend.In_slot k when not !tampered ->
                    tampered := true;
                    (name, { tl with Compiler.Stackmap.loc = Compiler.Backend.In_slot (k + 4) })
                | _ -> (name, tl))
              e.Compiler.Stackmap.live
          in
          { e with Compiler.Stackmap.live })
      per.Compiler.Toolchain.stackmaps
  in
  checkb "found a slot to corrupt" true !tampered;
  let ds =
    Analysis.Stackmap_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog
      { per with Compiler.Toolchain.stackmaps }
  in
  checkb "misaligned slot detected" true (has_rule "stackmap-slot-misaligned" ds);
  checkb "frame disagreement detected" true (has_rule "stackmap-frame-disagree" ds);
  (* A caller-saved register is never a legal home for a live value. *)
  let scratch = List.hd (Isa.Register.caller_saved arch) in
  let tampered = ref false in
  let stackmaps =
    List.map
      (fun (e : Compiler.Stackmap.entry) ->
        match e.Compiler.Stackmap.live with
        | (name, tl) :: rest when not !tampered ->
            tampered := true;
            { e with
              Compiler.Stackmap.live =
                (name, { tl with Compiler.Stackmap.loc = Compiler.Backend.In_register scratch })
                :: rest }
        | _ -> e)
      per.Compiler.Toolchain.stackmaps
  in
  checkb "found an entry to corrupt" true !tampered;
  let ds =
    Analysis.Stackmap_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog
      { per with Compiler.Toolchain.stackmaps }
  in
  checkb "caller-saved home detected" true
    (has_rule "stackmap-caller-saved-register" ds)

let unwind_corruptions_detected () =
  let b = Lazy.force cg_binary in
  let per = first_isa b in
  let clean =
    Analysis.Unwind_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog per
  in
  checki "clean binary has no unwind errors" 0 (D.errors clean);
  (* Breaking 16-byte frame alignment breaks CFA-chain monotonicity. *)
  let unwind =
    match per.Compiler.Toolchain.unwind with
    | (r : Compiler.Unwind.rule) :: rest ->
        { r with Compiler.Unwind.frame_bytes = r.Compiler.Unwind.frame_bytes + 8 } :: rest
    | [] -> Alcotest.fail "no unwind rules"
  in
  let ds =
    Analysis.Unwind_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog
      { per with Compiler.Toolchain.unwind }
  in
  checkb "misaligned frame detected" true (has_rule "unwind-frame-align" ds);
  checkb "rule/layout size disagreement detected" true
    (has_rule "unwind-frame-size-disagree" ds);
  (* Swap a callee-save slot onto a live-value slot: the restored register
     would clobber the value mid-transformation. *)
  let victim =
    List.find_map
      (fun (fname, (f : Compiler.Backend.frame)) ->
        match
          ( f.Compiler.Backend.save_offsets,
            List.find_map
              (fun (_, loc) ->
                match loc with
                | Compiler.Backend.In_slot k -> Some k
                | Compiler.Backend.In_register _ -> None)
              f.Compiler.Backend.locations )
        with
        | _ :: _, Some slot -> Some (fname, slot)
        | _ -> None)
      per.Compiler.Toolchain.frames
  in
  match victim with
  | None -> Alcotest.fail "no function with both saves and spilled locals"
  | Some (fname, slot) ->
      let unwind =
        List.map
          (fun (r : Compiler.Unwind.rule) ->
            if r.Compiler.Unwind.fname <> fname then r
            else
              match r.Compiler.Unwind.saved_registers with
              | (reg, _) :: rest ->
                  { r with Compiler.Unwind.saved_registers = (reg, slot) :: rest }
              | [] -> r)
          per.Compiler.Toolchain.unwind
      in
      let ds =
        Analysis.Unwind_check.check_isa ~label:"cg.A" ~prog:b.Compiler.Toolchain.prog
          { per with Compiler.Toolchain.unwind }
      in
      checkb "save slot over live value detected" true
        (has_rule "unwind-save-overlaps-local" ds)

let unwind_recursive_is_info () =
  let f =
    raw_func "f"
      [ Ir.Prog.Call { site_id = 0; callee = "g"; args = [] } ]
  in
  let g =
    raw_func "g"
      [ Ir.Prog.Call { site_id = 0; callee = "f"; args = [] } ]
  in
  let prog = raw_prog "rec" [ f; g ] "f" in
  let binary = Compiler.Toolchain.compile prog in
  let ds = Analysis.Unwind_check.check binary in
  checkb "recursion reported" true (has_rule "unwind-recursive" ds);
  checki "but not as an error" 0 (D.errors ds)

let layout_skew_detected () =
  let b = Lazy.force cg_binary in
  let aligned = b.Compiler.Toolchain.aligned in
  checki "clean binary has an aligned layout" 0
    (List.length (Analysis.Layout_check.check_aligned ~label:"cg.A" aligned));
  (* Skew one symbol's address on one ISA only. *)
  let skew (l : Binary.Layout.t) =
    match l.Binary.Layout.placed with
    | (p : Binary.Layout.placed) :: rest ->
        { l with Binary.Layout.placed = { p with Binary.Layout.addr = p.Binary.Layout.addr + 4096 } :: rest }
    | [] -> l
  in
  let layouts =
    match aligned.Binary.Align.layouts with
    | (arch, l) :: rest -> (arch, skew l) :: rest
    | [] -> []
  in
  let ds =
    Analysis.Layout_check.check_aligned ~label:"cg.A"
      { aligned with Binary.Align.layouts }
  in
  checkb "skewed address detected" true (has_rule "layout-address-mismatch" ds);
  (* Shrink a data symbol on one ISA: common-format data must agree. *)
  let shrink (l : Binary.Layout.t) =
    let done_ = ref false in
    let placed =
      List.map
        (fun (p : Binary.Layout.placed) ->
          let sym = p.Binary.Layout.symbol in
          if (not !done_) && not (Memsys.Symbol.is_function sym) then begin
            done_ := true;
            { p with
              Binary.Layout.symbol = { sym with Memsys.Symbol.size = sym.Memsys.Symbol.size / 2 } }
          end
          else p)
        l.Binary.Layout.placed
    in
    { l with Binary.Layout.placed }
  in
  let layouts =
    match aligned.Binary.Align.layouts with
    | (arch, l) :: rest -> (arch, shrink l) :: rest
    | [] -> []
  in
  let ds =
    Analysis.Layout_check.check_aligned ~label:"cg.A"
      { aligned with Binary.Align.layouts }
  in
  checkb "data size skew detected" true (has_rule "layout-size-mismatch" ds)

(* --- pass 5: DSM race detection over captured logs ---------------------- *)

let captured_log =
  lazy
    (let binary = Hetmig.Het.compile_benchmark Workload.Spec.IS Workload.Spec.A in
     let spec = Workload.Spec.spec Workload.Spec.IS Workload.Spec.A in
     Analysis.Dsm_check.capture ~binary ~spec)

let capture_is_clean_and_nonempty () =
  let events, units = Lazy.force captured_log in
  checkb "log has accesses" true
    (List.exists
       (function Analysis.Race.Access _ -> true | _ -> false)
       events);
  checkb "log has sync edges" true
    (List.exists (function Analysis.Race.Sync _ -> true | _ -> false) events);
  checkb "both nodes accessed pages" true
    (List.exists
       (function Analysis.Race.Access { unit_; _ } -> unit_ = 1 | _ -> false)
       events);
  checki "coherent run is race-free" 0
    (List.length (Analysis.Race.detect ~units events))

let stripped_log_is_racy () =
  (* Remove the coherence messages from a real captured log: the same
     accesses, now unordered, must race — proving the HB edges (not the
     detector being trivially happy) make the clean verdict. *)
  let events, units = Lazy.force captured_log in
  let stripped =
    List.filter
      (function Analysis.Race.Access _ -> true | _ -> false)
      events
  in
  checkb "stripped log races" true
    (Analysis.Race.detect ~units stripped <> []);
  let ds = Analysis.Dsm_check.check_log ~label:"is.A" ~units stripped in
  checkb "reported as dsm-race errors" true (has_rule "dsm-race" ds);
  checkb "all race diagnostics are errors" true
    (D.errors ds = List.length ds)

let empty_log_is_flagged () =
  let ds = Analysis.Dsm_check.check_log ~label:"x" ~units:2 [] in
  checkb "empty log noted" true (has_rule "dsm-empty-log" ds);
  checki "but no errors" 0 (D.errors ds)

(* --- the driver: corpus, filtering, determinism ------------------------- *)

let builtin_corpus_clean () =
  let ds = Analysis.Lint.run () in
  checki "zero errors over every benchmark and class" 0 (D.errors ds);
  checki "zero warnings either" 0 (D.warnings ds)

let json_stable_across_jobs () =
  let targets =
    List.filter
      (fun (t : Analysis.Lint.target) -> t.Analysis.Lint.cls = Workload.Spec.A)
      Analysis.Lint.all_targets
  in
  let seq = Analysis.Lint.run ~targets ~jobs:1 () in
  let par = Analysis.Lint.run ~targets ~jobs:4 () in
  checks "byte-identical report" (D.report_to_json seq) (D.report_to_json par)

let rule_filter () =
  let target = { Analysis.Lint.bench = Workload.Spec.CG; cls = Workload.Spec.A } in
  let ds = Analysis.Lint.lint_target ~rules:[ "layout-address-mismatch" ] target in
  checki "clean target, filtered" 0 (List.length ds);
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "Lint: unknown rule no-such-rule") (fun () ->
      ignore (Analysis.Lint.lint_target ~rules:[ "no-such-rule" ] target));
  checkb "target name round-trips" true
    (Analysis.Lint.target_of_name "cg.A" = Some target);
  checkb "registry covers the dsm pass" true (Analysis.Lint.is_rule "dsm-race")

(* --- stackmap diff (satellite 1) ---------------------------------------- *)

let sm_entry fname kind site_id live =
  { Compiler.Stackmap.fname; kind; site_id; live }

let tl ty k = { Compiler.Stackmap.ty; loc = Compiler.Backend.In_slot k }

let diff_sites_exhaustive () =
  let a =
    [
      sm_entry "f" Ir.Liveness.At_call 0 [ ("x", tl Ir.Ty.I64 8) ];
      sm_entry "f" Ir.Liveness.At_mig_point 1 [ ("y", tl Ir.Ty.F64 16) ];
      sm_entry "g" Ir.Liveness.At_call 0 [];
    ]
  in
  let b =
    [
      sm_entry "f" Ir.Liveness.At_call 0 [ ("z", tl Ir.Ty.I64 8) ];
      sm_entry "g" Ir.Liveness.At_call 0 [];
    ]
  in
  let mismatches = Compiler.Stackmap.diff_sites a b in
  (* A live-set disagreement, a missing site, AND the order shift the
     missing site causes on g: all three reported, not just the first. *)
  checki "every disagreement reported" 3 (List.length mismatches);
  checkb "live-set diff present" true
    (List.exists
       (function Compiler.Stackmap.Live_set _ -> true | _ -> false)
       mismatches);
  checkb "missing site present" true
    (List.exists
       (function
         | Compiler.Stackmap.Site_missing { missing_in = `Second; _ } -> true
         | _ -> false)
       mismatches);
  let pairs, report = Compiler.Stackmap.join_sites a b in
  checki "agreeing sites still paired" 1 (List.length pairs);
  checki "join carries the full report" (List.length mismatches)
    (List.length report);
  Alcotest.check_raises "raising wrapper keeps its contract"
    (Invalid_argument
       (Format.asprintf
          "Stackmap.common_sites: metadata sets disagree (%d mismatches): %a"
          (List.length mismatches) Compiler.Stackmap.pp_mismatch
          (List.hd mismatches)))
    (fun () -> ignore (Compiler.Stackmap.common_sites a b))

(* --- QCheck: mutation-style over random programs ------------------------ *)

let qcheck_ir_mutations =
  QCheck.Test.make ~name:"random-program mutations trip the IR pass" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog = Gen.random_program seed in
      (* Gen programs are well-formed apart from call-argument types (the
         generator picks arguments by arity only). *)
      let baseline = Analysis.Ir_check.check prog in
      let only_types =
        List.for_all
          (fun (d : D.t) ->
            d.D.severity <> D.Error || d.D.rule = "ir-call-arg-type")
          baseline
      in
      let entry = Ir.Prog.find_func prog prog.Ir.Prog.entry in
      let with_body body =
        let funcs =
          List.map
            (fun (name, f) ->
              if name = prog.Ir.Prog.entry then (name, { f with Ir.Prog.body })
              else (name, f))
            prog.Ir.Prog.funcs
        in
        { prog with Ir.Prog.funcs }
      in
      let use_undef =
        with_body (entry.Ir.Prog.body @ [ Ir.Prog.Use "__nowhere" ])
      in
      let bad_call =
        with_body
          (entry.Ir.Prog.body
          @ [ Ir.Prog.Call { site_id = 9999; callee = "__missing"; args = [] } ])
      in
      only_types
      && has_rule "ir-undefined-use" (Analysis.Ir_check.check use_undef)
      && has_rule "ir-unknown-callee" (Analysis.Ir_check.check bad_call))

let qcheck_stackmap_mutations =
  QCheck.Test.make ~name:"dropping any stackmap entry is always caught"
    ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog = Gen.random_program seed in
      let binary = Compiler.Toolchain.compile prog in
      let per = List.hd binary.Compiler.Toolchain.isas in
      match per.Compiler.Toolchain.stackmaps with
      | [] -> true
      | entries ->
          let drop = seed mod List.length entries in
          let stackmaps = List.filteri (fun i _ -> i <> drop) entries in
          let ds =
            Analysis.Stackmap_check.check_isa ~label:prog.Ir.Prog.name
              ~prog:binary.Compiler.Toolchain.prog
              { per with Compiler.Toolchain.stackmaps }
          in
          count_rule "stackmap-missing-entry" ds = 1)

let suite =
  [
    ("diagnostic rendering", `Quick, diagnostic_render);
    ("diagnostic report determinism", `Quick, diagnostic_report_deterministic);
    ("race: conflicting access basics", `Quick, race_basic);
    ("race: sync edges order", `Quick, race_sync_edges);
    ("race: read/write conflicts", `Quick, race_read_write);
    ("race: one report per page", `Quick, race_report_once_per_page);
    ("race: bad unit rejected", `Quick, race_rejects_bad_units);
    ("ir pass detects corruptions", `Quick, ir_detects_corruptions);
    ("ir pass: arg types and reachability", `Quick, ir_arg_types_and_reachability);
    ("stackmap pass: dropped entry", `Quick, stackmap_drop_entry_detected);
    ("stackmap pass: bad locations", `Quick, stackmap_bad_location_detected);
    ("unwind pass: frame corruptions", `Quick, unwind_corruptions_detected);
    ("unwind pass: recursion is info", `Quick, unwind_recursive_is_info);
    ("layout pass: skewed symbols", `Quick, layout_skew_detected);
    ("dsm pass: coherent capture is clean", `Quick, capture_is_clean_and_nonempty);
    ("dsm pass: stripped log races", `Quick, stripped_log_is_racy);
    ("dsm pass: empty log flagged", `Quick, empty_log_is_flagged);
    ("lint: built-in corpus is clean", `Slow, builtin_corpus_clean);
    ("lint: json stable across jobs", `Quick, json_stable_across_jobs);
    ("lint: rule filtering", `Quick, rule_filter);
    ("stackmap diff is exhaustive", `Quick, diff_sites_exhaustive);
    QCheck_alcotest.to_alcotest qcheck_ir_mutations;
    QCheck_alcotest.to_alcotest qcheck_stackmap_mutations;
  ]
