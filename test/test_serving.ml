(* Open-loop request serving ({!Sched.Service}): conservation, tail
   monotonicity, the zero-downtime ablation, and the island determinism
   guarantee on the serving path. *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

(* A small trace of each kind, scaled for property counts. *)
let small_trace kind seed =
  match kind with
  | 0 -> Sched.Arrival.bursty ~seed ~services:3 ~duration_s:12.0 ()
  | 1 ->
    Sched.Arrival.diurnal ~seed ~services:3 ~days:1 ~day_s:48.0
      ~peak_rps:15.0 ()
  | _ ->
    Sched.Arrival.bursty ~rate_high:60.0 ~rate_low:0.5 ~mean_on:2.0
      ~mean_off:4.0 ~seed ~services:2 ~duration_s:10.0 ()

let policy_of = function
  | 0 -> Sched.Service.Slo_aware
  | 1 -> Sched.Service.Static_x86
  | _ -> Sched.Service.Static_arm

(* --- conservation + tail monotonicity, seeds x traces x policies ------- *)

let qcheck_conservation =
  QCheck.Test.make
    ~name:
      "serving: responded + dropped + in-flight = arrived (seeds x traces x \
       policies x crashes)"
    ~count:18
    QCheck.(int_bound 100_000)
    (fun raw ->
      let seed = raw mod 97 in
      let kind = raw mod 3 in
      let policy = policy_of (raw / 3 mod 3) in
      let crashes =
        (* Half the runs lose a node mid-trace; crash accounting must
           still balance (wiped queues and executions count as drops). *)
        if raw mod 2 = 0 then []
        else [ { Faults.Plan.node = 1 + (raw / 7 mod 3); at = 3.0 } ]
      in
      let cfg =
        { (Sched.Service.default ~nodes:4 ~seed
             ~source:(Sched.Arrival.Materialized (small_trace kind seed)))
          with policy; crashes }
      in
      let r = Sched.Service.run ~domains:1 cfg in
      r.responded + r.dropped + r.in_flight_at_end = r.arrived
      && r.responded > 0
      && r.p50_ms <= r.p99_ms
      && r.p99_ms <= r.p999_ms)

(* --- seq vs 4-domain island runs are byte-identical -------------------- *)

let qcheck_report_byte_equal =
  QCheck.Test.make
    ~name:"serving: report byte-identical on 1 vs 4 domains"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun raw ->
      let seed = raw mod 89 in
      let kind = raw mod 3 in
      let policy = policy_of (raw / 2 mod 3) in
      let crashes =
        if raw mod 3 = 0 then [ { Faults.Plan.node = 2; at = 2.0 } ] else []
      in
      let cfg =
        { (Sched.Service.default ~nodes:6 ~seed
             ~source:(Sched.Arrival.Materialized (small_trace kind seed)))
          with policy; crashes }
      in
      let a = Sched.Service.run ~domains:1 cfg in
      let b = Sched.Service.run ~domains:4 cfg in
      Sched.Service.render cfg a = Sched.Service.render cfg b)

(* --- streaming generators reproduce the materialized traces ------------ *)

let qcheck_stream_equiv =
  QCheck.Test.make
    ~name:
      "arrival: materialize (source) = materialized generator, request for \
       request (bursty + diurnal + replay)"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun raw ->
      let seed = raw mod 211 in
      let services = 1 + (raw mod 5) in
      let trace, source =
        if raw mod 2 = 0 then
          ( Sched.Arrival.bursty ~seed ~services ~duration_s:20.0 (),
            Sched.Arrival.bursty_source ~seed ~services ~duration_s:20.0 () )
        else
          ( Sched.Arrival.diurnal ~seed ~services ~days:1 ~day_s:60.0
              ~peak_rps:20.0 (),
            Sched.Arrival.diurnal_source ~seed ~services ~days:1 ~day_s:60.0
              ~peak_rps:20.0 () )
      in
      let streamed = Sched.Arrival.materialize source in
      let replayed =
        (* The chunked file reader must yield the same sequence too. *)
        let path = Filename.temp_file "hetmig_stream_eq" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sched.Arrival.to_file trace path;
            Sched.Arrival.materialize (Sched.Arrival.Replay_file path))
      in
      streamed.Sched.Arrival.services = trace.Sched.Arrival.services
      && streamed.Sched.Arrival.requests = trace.Sched.Arrival.requests
      && replayed.Sched.Arrival.requests = trace.Sched.Arrival.requests)

(* --- replica groups: conservation under routing x policies x crashes ---- *)

let qcheck_replica_conservation =
  QCheck.Test.make
    ~name:
      "serving: replica groups conserve requests (seeds x routing x policies \
       x crashes)"
    ~count:18
    QCheck.(int_bound 100_000)
    (fun raw ->
      let seed = raw mod 101 in
      let kind = raw mod 3 in
      let policy = policy_of (raw / 3 mod 3) in
      let routing =
        if raw mod 2 = 0 then Sched.Service.P2c else Sched.Service.Least_loaded
      in
      let crashes =
        if raw mod 5 < 2 then []
        else [ { Faults.Plan.node = 1 + (raw / 7 mod 5); at = 3.0 } ]
      in
      let cfg =
        { (Sched.Service.default ~nodes:6 ~seed
             ~source:(Sched.Arrival.Materialized (small_trace kind seed)))
          with policy; routing; crashes; replicas = 2; max_replicas = 3 }
      in
      let r = Sched.Service.run ~domains:1 cfg in
      r.responded + r.dropped + r.in_flight_at_end = r.arrived
      && r.responded > 0)

(* --- the determinism contract at scale: >= 100k requests ---------------- *)

let big_run_byte_equal () =
  (* A compressed high-rate burst mix: ~112k requests in ~0.2 s of host
     time per run, with replica routing and the SLO policy exercising
     scale-out on the way. *)
  let source =
    Sched.Arrival.bursty_source ~rate_high:400.0 ~rate_low:2.0 ~seed:1
      ~services:32 ~duration_s:30.0 ()
  in
  let cfg =
    { (Sched.Service.default ~nodes:12 ~seed:1 ~source) with
      Sched.Service.policy = Sched.Service.Slo_aware;
      replicas = 2;
      max_replicas = 4;
      demand_instructions = 2e6;
    }
  in
  let a = Sched.Service.run ~domains:1 cfg in
  checkb "scale reached" true (a.Sched.Service.arrived >= 100_000);
  let b = Sched.Service.run ~domains:4 cfg in
  checkb "1-domain and 4-domain renders byte-identical at >= 100k requests"
    true
    (Sched.Service.render cfg a = Sched.Service.render cfg b)

(* --- Stats.percentile is monotone in q on random histograms ------------ *)

let qcheck_percentile_monotone =
  QCheck.Test.make
    ~name:"Stats.percentile monotone in q over random histograms"
    ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, base_sel) ->
      let rng = Sim.Prng.create seed in
      let n = 1 + Sim.Prng.int rng 200 in
      let samples =
        List.init n (fun _ -> Sim.Prng.float rng 1.0e4)
      in
      let base = [| 2.0; 4.0; 10.0 |].(base_sel) in
      let h = Sim.Stats.log_histogram ~base ~buckets:20 samples in
      let qs = [ 0.0; 0.1; 0.5; 0.9; 0.99; 0.999; 1.0 ] in
      let vs = List.map (Sim.Stats.percentile h) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vs)

(* --- zero-downtime ablation: SLO-aware never worsens p99 vs static x86 --

   The downtime-vs-tail claim, inverted: with migration pauses stubbed
   to zero, escalating to x86 must cost nothing on the tail. The trace
   is crafted so the comparison is exact — a one-request-per-service
   priming pulse at t=0.01 breaches the slo=0 window at the first tick,
   every service escalates (instantly, zero downtime) to the very x86
   anchor the static-x86 run uses, and the main traffic only starts
   after the migration settles. The SLO run then serves the entire main
   load on identical nodes with identical per-rid demands, so its
   latency multiset differs from static-x86's only in the pulse
   requests — which stay below the tail on the vetted seeds. Latencies
   are read back through bucketed log-histograms, whose percentile
   interpolates within a bucket: the extra below-tail pulse samples can
   nudge the interpolation point by a fraction of the bucket, so the
   comparison allows the estimator's resolution (0.1%) rather than
   demanding bit equality of interpolated values. *)

let pulse_then_load_trace ~services =
  let pairs = ref [] in
  for svc = 0 to services - 1 do
    (* the priming pulse *)
    pairs := (0.01, svc) :: !pairs;
    (* steady main load from t=7 (after the window_s=5 tick plus the
       migration round trip): 180 req/s/service for 12 s, enough to
       push the x86 queueing tail well above an unloaded ARM response *)
    for i = 0 to 2159 do
      pairs := (7.0 +. (float_of_int i /. 180.0), svc) :: !pairs
    done
  done;
  let arr = Array.of_list !pairs in
  Array.sort compare arr;
  {
    Sched.Arrival.tname = "pulse-then-load";
    services;
    requests =
      Array.mapi
        (fun rid (at, svc) -> { Sched.Arrival.rid; svc; at })
        arr;
  }

let zero_downtime_no_tail_cost () =
  let trace = pulse_then_load_trace ~services:3 in
  List.iter
    (fun seed ->
      let base =
        Sched.Service.default ~nodes:8 ~seed
          ~source:(Sched.Arrival.Materialized trace)
      in
      let slo_cfg =
        { base with
          Sched.Service.policy = Sched.Service.Slo_aware;
          slo_ms = 0.0;
          zero_downtime = true;
        }
      in
      let x86_cfg = { base with Sched.Service.policy = Sched.Service.Static_x86 } in
      let slo = Sched.Service.run ~domains:1 slo_cfg in
      let x86 = Sched.Service.run ~domains:1 x86_cfg in
      checki
        (Printf.sprintf "seed %d: every service escalated" seed)
        3 slo.migrations;
      checkb
        (Printf.sprintf "seed %d: zero downtime charged" seed)
        true (slo.downtime_s = 0.0);
      checkb
        (Printf.sprintf
           "seed %d: slo-aware p99 (%.3f) <= static-x86 p99 (%.3f) under \
            zero downtime"
           seed slo.p99_ms x86.p99_ms)
        true
        (slo.p99_ms <= x86.p99_ms *. 1.001))
    (* Vetted seeds: the pulse requests' demand draws stay below the
       loaded-x86 tail, so both runs' latency multisets agree at the
       p99 rank exactly. *)
    [ 4; 9; 11; 15; 16 ]

(* --- the downtime-vs-tail trade itself --------------------------------- *)

let downtime_inflates_tail () =
  (* Same escalation scenario, with the stop-and-copy pause restored:
     requests arriving during the drain queue behind it, so the tail
     must be strictly worse than the zero-downtime ablation. The load
     flows while the migration is in flight to guarantee victims. *)
  let services = 2 in
  let pairs = ref [] in
  for svc = 0 to services - 1 do
    for i = 0 to 1199 do
      pairs := (0.05 +. (float_of_int i /. 100.0), svc) :: !pairs
    done
  done;
  let arr = Array.of_list !pairs in
  Array.sort compare arr;
  let trace =
    {
      Sched.Arrival.tname = "steady-load";
      services;
      requests =
        Array.mapi
          (fun rid (at, svc) -> { Sched.Arrival.rid; svc; at })
          arr;
    }
  in
  let base =
    Sched.Service.default ~nodes:4 ~seed:7
      ~source:(Sched.Arrival.Materialized trace)
  in
  let run zero_downtime =
    Sched.Service.run ~domains:1
      { base with
        Sched.Service.policy = Sched.Service.Slo_aware;
        slo_ms = 0.0;
        zero_downtime;
      }
  in
  let paused = run false and free = run true in
  checkb "both runs escalate" true (paused.migrations > 0 && free.migrations > 0);
  checkb "stop-and-copy charges downtime" true (paused.downtime_s > 0.0);
  checkb "zero-downtime stub charges none" true (free.downtime_s = 0.0);
  checkb
    (Printf.sprintf "downtime inflates the tail (p999 %.3f > %.3f)"
       paused.p999_ms free.p999_ms)
    true
    (paused.p999_ms > free.p999_ms)

(* --- trace files round-trip bit-identically ---------------------------- *)

let trace_file_roundtrip () =
  let t = Sched.Arrival.bursty ~seed:11 ~services:4 ~duration_s:8.0 () in
  let path = Filename.temp_file "hetmig_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sched.Arrival.to_file t path;
      let t' = Sched.Arrival.of_file path in
      checki "services survive" t.Sched.Arrival.services t'.Sched.Arrival.services;
      checkb "requests identical" true
        (t.Sched.Arrival.requests = t'.Sched.Arrival.requests);
      (* And the replay simulates identically to the original. *)
      let cfg tr =
        Sched.Service.default ~nodes:4 ~seed:11
          ~source:(Sched.Arrival.Materialized tr)
      in
      let a = Sched.Service.run ~domains:1 (cfg t) in
      let b = Sched.Service.run ~domains:1 (cfg t') in
      checkb "replayed trace gives a byte-identical report" true
        (Sched.Service.render (cfg t) a = Sched.Service.render (cfg t') b))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_report_byte_equal;
    QCheck_alcotest.to_alcotest qcheck_stream_equiv;
    QCheck_alcotest.to_alcotest qcheck_replica_conservation;
    Alcotest.test_case "1-vs-4-domain byte equality at 100k+ requests" `Quick
      big_run_byte_equal;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    Alcotest.test_case "zero-downtime ablation: no tail cost vs static x86"
      `Quick zero_downtime_no_tail_cost;
    Alcotest.test_case "stop-and-copy downtime inflates the tail" `Quick
      downtime_inflates_tail;
    Alcotest.test_case "trace file round-trip" `Quick trace_file_roundtrip;
  ]
