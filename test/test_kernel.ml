let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let machines = [ Machine.Server.xeon_e5_1650_v2; Machine.Server.xgene1 ]

let make_pop () =
  let engine = Sim.Engine.create () in
  (engine, Kernel.Popcorn.create engine ~machines ())

let phase ?(pages = []) ?(writes = false) instructions =
  {
    Kernel.Process.instructions;
    category = Isa.Cost_model.Compute;
    pages;
    writes;
  }

(* --- message bus --------------------------------------------------------- *)

let message_delivery_latency () =
  let engine = Sim.Engine.create () in
  let bus = Kernel.Message.create engine Machine.Interconnect.dolphin_pxh810 in
  let delivered = ref (-1.0) in
  Kernel.Message.send bus Kernel.Message.Thread_migration ~bytes:4096
    ~on_delivery:(fun () -> delivered := Sim.Engine.now engine)
    ();
  Sim.Engine.run engine;
  checkb "delivered after latency" true (!delivered > 0.0);
  checkb "fast interconnect" true (!delivered < 1e-4);
  checki "counted" 1 (Kernel.Message.sent bus Kernel.Message.Thread_migration);
  checki "bytes" 4096 (Kernel.Message.total_bytes bus)

let message_kinds_separate () =
  let engine = Sim.Engine.create () in
  let bus = Kernel.Message.create engine Machine.Interconnect.dolphin_pxh810 in
  Kernel.Message.send bus Kernel.Message.Page_request ~bytes:64
    ~on_delivery:(fun () -> ())
    ();
  checki "page_request" 1 (Kernel.Message.sent bus Kernel.Message.Page_request);
  checki "other kind zero" 0 (Kernel.Message.sent bus Kernel.Message.Page_reply)

(* --- continuations -------------------------------------------------------- *)

let continuation_blocks_in_kernel_migration () =
  let c = Kernel.Continuation.create () in
  Kernel.Continuation.enter_kernel c ~node:0 ~arch:Isa.Arch.X86_64;
  checkb "in kernel" true (Kernel.Continuation.in_kernel c ~node:0);
  checkb "cannot migrate mid-service" false (Kernel.Continuation.can_migrate c);
  checkb "migrate refused" true
    (match Kernel.Continuation.migrate c ~to_node:1 ~to_arch:Isa.Arch.Arm64 with
    | Error _ -> true
    | Ok _ -> false);
  Kernel.Continuation.exit_kernel c ~node:0;
  checkb "can migrate after service" true (Kernel.Continuation.can_migrate c);
  checkb "migrate ok" true
    (match Kernel.Continuation.migrate c ~to_node:1 ~to_arch:Isa.Arch.Arm64 with
    | Ok k -> k.Kernel.Continuation.arch = Isa.Arch.Arm64
    | Error _ -> false)

let continuation_nested_services () =
  let c = Kernel.Continuation.create () in
  Kernel.Continuation.enter_kernel c ~node:0 ~arch:Isa.Arch.X86_64;
  Kernel.Continuation.enter_kernel c ~node:0 ~arch:Isa.Arch.X86_64;
  Kernel.Continuation.exit_kernel c ~node:0;
  checkb "still in kernel" true (Kernel.Continuation.in_kernel c ~node:0);
  Kernel.Continuation.exit_kernel c ~node:0;
  checkb "out" false (Kernel.Continuation.in_kernel c ~node:0);
  checkb "unbalanced exit raises" true
    (try
       Kernel.Continuation.exit_kernel c ~node:0;
       false
     with Invalid_argument _ -> true)

(* --- loader ----------------------------------------------------------------- *)

let loader_maps_binary () =
  let engine = Sim.Engine.create () in
  let pop = Kernel.Popcorn.create engine ~machines () in
  ignore engine;
  let tc =
    Compiler.Toolchain.compile
      (Workload.Programs.program Workload.Spec.IS Workload.Spec.A)
  in
  let image =
    Kernel.Loader.load tc ~dsm:pop.Kernel.Popcorn.dsm ~node:0 ~slot:0
      ~heap_bytes:(1 lsl 20)
  in
  checkb "text aliased" true
    (Memsys.Address_space.active_text_image image.Kernel.Loader.aspace
       Isa.Arch.Arm64
    <> Memsys.Address_space.active_text_image image.Kernel.Loader.aspace
         Isa.Arch.X86_64);
  checkb "entry points at main" true
    (image.Kernel.Loader.entry = Compiler.Toolchain.symbol_address tc "main");
  checkb "text pages exist" true (image.Kernel.Loader.text_pages <> []);
  checkb "data pages exist" true (image.Kernel.Loader.data_pages <> []);
  (* Text pages are aliased in the DSM (never transferred). *)
  List.iter
    (fun page ->
      Alcotest.check (Alcotest.float 0.0) "text access free" 0.0
        (Dsm.Hdsm.access pop.Kernel.Popcorn.dsm ~node:1 ~page ~write:false))
    image.Kernel.Loader.text_pages;
  (* Data pages are owned by the spawning node. *)
  List.iter
    (fun page ->
      checki "owned by node 0" 0 (Dsm.Hdsm.owner pop.Kernel.Popcorn.dsm ~page))
    (Memsys.Page.ranges_pages image.Kernel.Loader.data_pages)

let loader_disjoint_processes () =
  let engine = Sim.Engine.create () in
  let pop = Kernel.Popcorn.create engine ~machines () in
  let a =
    Kernel.Loader.load_raw ~dsm:pop.Kernel.Popcorn.dsm ~node:0 ~slot:0 ~name:"a"
      ~footprint_bytes:(1 lsl 16)
  in
  let b =
    Kernel.Loader.load_raw ~dsm:pop.Kernel.Popcorn.dsm ~node:1 ~slot:1 ~name:"b"
      ~footprint_bytes:(1 lsl 16)
  in
  let b_pages = Memsys.Page.ranges_pages b.Kernel.Loader.data_pages in
  let inter =
    List.filter
      (fun p -> List.mem p b_pages)
      (Memsys.Page.ranges_pages a.Kernel.Loader.data_pages)
  in
  checkb "page sets disjoint" true (inter = [])

(* --- process execution -------------------------------------------------------- *)

let run_simple_process () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ [ phase 1e9; phase 1e9 ] ]
      ()
  in
  Kernel.Popcorn.start pop proc;
  Sim.Engine.run engine;
  checkb "finished" false (Kernel.Process.alive proc);
  checkb "finish time recorded" true (proc.Kernel.Process.finished_at <> None);
  (* 2e9 compute instructions at 7000 MIPS ~ 0.29 s. *)
  let t = Sim.Engine.now engine in
  checkb "plausible duration" true (t > 0.2 && t < 0.4)

let multithreaded_parallel_speedup () =
  let run threads =
    let engine, pop = make_pop () in
    let c = Kernel.Popcorn.new_container pop ~name:"c" in
    let per_thread = 4e9 /. float_of_int threads in
    let proc =
      Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
        ~footprint_bytes:(1 lsl 16)
        ~thread_phases:(List.init threads (fun _ -> [ phase per_thread ]))
        ()
    in
    Kernel.Popcorn.start pop proc;
    Sim.Engine.run engine;
    Sim.Engine.now engine
  in
  let t1 = run 1 and t4 = run 4 in
  checkb "4 threads faster" true (t4 < t1 /. 2.0)

let arm_slower_than_x86 () =
  let run node =
    let engine, pop = make_pop () in
    let c = Kernel.Popcorn.new_container pop ~name:"c" in
    let proc =
      Kernel.Popcorn.spawn pop ~container:c ~node ~name:"job"
        ~footprint_bytes:(1 lsl 16)
        ~thread_phases:[ [ phase 5e9 ] ]
        ()
    in
    Kernel.Popcorn.start pop proc;
    Sim.Engine.run engine;
    Sim.Engine.now engine
  in
  checkb "x-gene slower" true (run 1 > 2.0 *. run 0)

let migration_moves_thread_and_pages () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16) ~thread_phases:[ [] ] ()
  in
  (* Phases touching this process's own pages. *)
  let pages = Memsys.Page.ranges_pages proc.Kernel.Process.data_pages in
  let th = List.hd proc.Kernel.Process.threads in
  th.Kernel.Process.remaining <-
    List.init 10 (fun _ -> phase ~pages:(List.filteri (fun i _ -> i < 4) pages) 1e9);
  Kernel.Popcorn.start pop proc;
  (* Request migration shortly after start. *)
  Sim.Engine.schedule engine ~at:0.05 (fun () ->
      Kernel.Popcorn.migrate pop proc ~to_node:1);
  Sim.Engine.run engine;
  checkb "done" false (Kernel.Process.alive proc);
  checki "thread migrated once" 1 th.Kernel.Process.migrations;
  checki "thread on node 1" 1 th.Kernel.Process.node;
  (* Residual dependencies drained: home moved to node 1. *)
  checki "home moved" 1 proc.Kernel.Process.home;
  List.iter
    (fun page ->
      checki "page drained" 1 (Dsm.Hdsm.owner pop.Kernel.Popcorn.dsm ~page))
    pages

let migration_honoured_at_phase_boundary () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ List.init 20 (fun _ -> phase 5e8) ]
      ()
  in
  Kernel.Popcorn.start pop proc;
  let th = List.hd proc.Kernel.Process.threads in
  let migrated_at = ref 0.0 in
  Sim.Engine.schedule engine ~at:0.1 (fun () ->
      Kernel.Popcorn.migrate pop proc ~to_node:1;
      (* Poll until the thread lands. *)
      let rec poll () =
        if th.Kernel.Process.node = 1 then migrated_at := Sim.Engine.now engine
        else Sim.Engine.schedule_in engine ~after:0.001 poll
      in
      poll ());
  Sim.Engine.run engine;
  (* One phase is 5e8 instr ~ 71 ms on the Xeon: the migration must land
     within roughly one phase of the request (the migration response
     time), not instantly and not at program end. *)
  checkb "bounded response time" true
    (!migrated_at > 0.1 && !migrated_at < 0.1 +. 0.2)

let energy_accounting_sane () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ [ phase 7e9 ] ]
      ()
  in
  Kernel.Popcorn.start pop proc;
  Sim.Engine.run engine;
  let t = Sim.Engine.now engine in
  let e0 = Kernel.Popcorn.energy pop 0 in
  let idle_floor =
    (Machine.Server.xeon_e5_1650_v2.Machine.Server.power.Machine.Power.cpu_idle_w
    +. Machine.Server.xeon_e5_1650_v2.Machine.Server.power.Machine.Power
       .platform_w)
    *. t
  in
  checkb "energy above idle floor" true (e0 >= idle_floor *. 0.999);
  let max_power =
    Machine.Power.system_power
      Machine.Server.xeon_e5_1650_v2.Machine.Server.power ~utilization:1.0
  in
  checkb "energy below max envelope" true (e0 <= max_power *. t *. 1.001)

let powered_off_burns_sleep_power () =
  let engine, pop = make_pop () in
  Kernel.Popcorn.set_powered pop 1 false;
  Sim.Engine.schedule engine ~at:100.0 (fun () -> ());
  Sim.Engine.run engine;
  let e1 = Kernel.Popcorn.energy pop 1 in
  let sleep = Machine.Server.xgene1.Machine.Server.power.Machine.Power.sleep_w in
  checkb "sleep energy" true (Float.abs (e1 -. (sleep *. 100.0)) < 1.0)

let container_spans_during_migration () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ List.init 40 (fun _ -> phase 5e8) ]
      ()
  in
  Kernel.Popcorn.start pop proc;
  let residual p =
    Dsm.Hdsm.residual_pages pop.Kernel.Popcorn.dsm ~home:p.Kernel.Process.home
    > 0
  in
  let spanned = ref [] in
  Sim.Engine.schedule engine ~at:0.2 (fun () ->
      Kernel.Popcorn.migrate pop proc ~to_node:1);
  Sim.Engine.schedule engine ~at:0.4 (fun () ->
      spanned := Kernel.Container.span c ~residual);
  Sim.Engine.run engine;
  checkb "container spanned both kernels mid-migration" true
    (List.length !spanned >= 1)

let multiple_containers_isolated () =
  (* Two containers (multi-process): disjoint DSM pages, independent
     namespace views, independent migration. *)
  let engine, pop = make_pop () in
  let c1 = Kernel.Popcorn.new_container pop ~name:"web" in
  let c2 = Kernel.Popcorn.new_container pop ~name:"batch" in
  let p1 =
    Kernel.Popcorn.spawn pop ~container:c1 ~node:0 ~name:"web-1"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ List.init 10 (fun _ -> phase 5e8) ]
      ()
  in
  let p2 =
    Kernel.Popcorn.spawn pop ~container:c2 ~node:0 ~name:"batch-1"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ List.init 10 (fun _ -> phase 5e8) ]
      ()
  in
  let p2_pages = Memsys.Page.ranges_pages p2.Kernel.Process.data_pages in
  let inter =
    List.filter
      (fun p -> List.mem p p2_pages)
      (Memsys.Page.ranges_pages p1.Kernel.Process.data_pages)
  in
  checkb "containers' pages disjoint" true (inter = []);
  Kernel.Popcorn.start pop p1;
  Kernel.Popcorn.start pop p2;
  (* Migrate only the batch container. *)
  Sim.Engine.schedule engine ~at:0.1 (fun () ->
      Kernel.Popcorn.migrate pop p2 ~to_node:1);
  Sim.Engine.run engine;
  let th1 = List.hd p1.Kernel.Process.threads in
  let th2 = List.hd p2.Kernel.Process.threads in
  checki "web stayed on x86" 0 th1.Kernel.Process.node;
  checki "batch moved to ARM" 1 th2.Kernel.Process.node;
  checki "web never migrated" 0 th1.Kernel.Process.migrations;
  (* Namespace views of identically-built containers agree; they differ
     from each other only by content, not by kernel. *)
  let ns1 = Kernel.Namespace.create_set ~name:"web" in
  let ns1' = Kernel.Namespace.create_set ~name:"web" in
  checki "same container view on any kernel"
    (Kernel.Namespace.view_fingerprint ns1)
    (Kernel.Namespace.view_fingerprint ns1')

let message_traffic_accounted_during_migration () =
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ List.init 6 (fun _ -> phase 5e8) ]
      ()
  in
  Kernel.Popcorn.start pop proc;
  Sim.Engine.schedule engine ~at:0.05 (fun () ->
      Kernel.Popcorn.migrate pop proc ~to_node:1);
  Sim.Engine.run engine;
  checki "exactly one thread-migration message" 1
    (Kernel.Message.sent pop.Kernel.Popcorn.bus Kernel.Message.Thread_migration);
  checkb "bytes accounted" true
    (Kernel.Message.total_bytes pop.Kernel.Popcorn.bus >= 4096)

let split_threads_pingpong_dsm () =
  (* Two threads of one process on different kernels writing the same
     pages: the hDSM write-invalidate protocol must ping-pong ownership
     (no stop-the-world, but real coherence traffic). *)
  let engine, pop = make_pop () in
  let c = Kernel.Popcorn.new_container pop ~name:"c" in
  let proc =
    Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
      ~footprint_bytes:(1 lsl 16)
      ~thread_phases:[ []; [] ] ()
  in
  let shared =
    List.filteri (fun i _ -> i < 2)
      (Memsys.Page.ranges_pages proc.Kernel.Process.data_pages)
  in
  List.iter
    (fun (th : Kernel.Process.thread) ->
      th.Kernel.Process.remaining <-
        List.init 20 (fun _ -> phase ~pages:shared ~writes:true 2e8))
    proc.Kernel.Process.threads;
  Kernel.Popcorn.start pop proc;
  (* Migrate only the second thread by raising its flag directly. *)
  let th2 = List.nth proc.Kernel.Process.threads 1 in
  Sim.Engine.schedule engine ~at:0.05 (fun () ->
      Kernel.Vdso.request pop.Kernel.Popcorn.vdso ~tid:th2.Kernel.Process.tid
        ~dest:1);
  Sim.Engine.run engine;
  checki "thread 2 migrated" 1 th2.Kernel.Process.node;
  let st = Dsm.Hdsm.stats pop.Kernel.Popcorn.dsm in
  checkb "coherence ping-pong observed" true
    (st.Dsm.Hdsm.invalidations > 5 && st.Dsm.Hdsm.remote_fetches > 5)

let batched_prefetched_migration_equivalent () =
  (* The same migration scenario under --dsm-batch --prefetch: the thread
     still completes all its work on the destination, every page still
     drains, and the simulated drain latency shrinks. *)
  let scenario ~dsm_batch ~prefetch =
    let engine = Sim.Engine.create () in
    let pop = Kernel.Popcorn.create engine ~machines ~dsm_batch ~prefetch () in
    let c = Kernel.Popcorn.new_container pop ~name:"c" in
    let proc =
      Kernel.Popcorn.spawn pop ~container:c ~node:0 ~name:"job"
        ~footprint_bytes:(1 lsl 20) ~thread_phases:[ [] ] ()
    in
    let pages = Memsys.Page.ranges_pages proc.Kernel.Process.data_pages in
    let th = List.hd proc.Kernel.Process.threads in
    th.Kernel.Process.remaining <-
      List.init 10 (fun i ->
          phase ~pages:(List.filteri (fun j _ -> j mod 10 = i) pages)
            ~writes:true 1e9);
    Kernel.Popcorn.start pop proc;
    Sim.Engine.schedule engine ~at:0.05 (fun () ->
        Kernel.Popcorn.migrate pop proc ~to_node:1);
    Sim.Engine.run engine;
    checkb "done" false (Kernel.Process.alive proc);
    checki "thread on node 1" 1 th.Kernel.Process.node;
    checki "all pages drained" 0
      (Dsm.Hdsm.residual_pages pop.Kernel.Popcorn.dsm ~home:0);
    (pop.Kernel.Popcorn.drain_time_s,
     (Dsm.Hdsm.stats pop.Kernel.Popcorn.dsm).Dsm.Hdsm.prefetched_pages)
  in
  let drain_off, pref_off = scenario ~dsm_batch:false ~prefetch:false in
  let drain_on, pref_on = scenario ~dsm_batch:true ~prefetch:true in
  checki "no prefetch without the flag" 0 pref_off;
  checkb "prefetch pushed pages" true (pref_on > 0);
  checkb "batched drain at least 2x faster" true
    (drain_off > 2.0 *. drain_on && drain_on > 0.0)

(* --- stack-transformation latency cache ---------------------------------- *)

let spawn_with_binary ?obs tc =
  let engine = Sim.Engine.create () in
  let pop = Kernel.Popcorn.create engine ?obs ~machines () in
  let container = Kernel.Popcorn.new_container pop ~name:"t" in
  ignore
    (Kernel.Popcorn.spawn pop ~container ~node:0 ~name:"bin" ~binary:tc
       ~footprint_bytes:(1 lsl 20) ~thread_phases:[ [] ] ())

let latency_cache_structural_hits () =
  Kernel.Popcorn.latency_cache_clear ();
  let prog = Workload.Programs.program Workload.Spec.IS Workload.Spec.A in
  (* two compilations of the same program: physically distinct, equal IR *)
  let tc1 = Compiler.Toolchain.compile prog in
  let tc2 = Compiler.Toolchain.compile prog in
  checkb "distinct toolchain values" true (tc1 != tc2);
  spawn_with_binary tc1;
  checkb "first spawn misses" true
    (Kernel.Popcorn.latency_cache_stats () = (0, 1));
  let obs = Obs.create () in
  spawn_with_binary ~obs tc2;
  checkb "recompiled binary hits" true
    (Kernel.Popcorn.latency_cache_stats () = (1, 1));
  checki "one entry" 1 (Kernel.Popcorn.latency_cache_size ());
  checkb "hit surfaced as an obs metric" true
    (Obs.counter_value obs "popcorn.latency_cache.hits" = Some 1);
  Kernel.Popcorn.latency_cache_clear ();
  checkb "clear resets" true
    (Kernel.Popcorn.latency_cache_stats () = (0, 0)
    && Kernel.Popcorn.latency_cache_size () = 0)

let latency_cache_bounded () =
  Kernel.Popcorn.latency_cache_clear ();
  Kernel.Popcorn.set_latency_cache_capacity 1;
  let tc_of b =
    Compiler.Toolchain.compile (Workload.Programs.program b Workload.Spec.A)
  in
  spawn_with_binary (tc_of Workload.Spec.IS);
  spawn_with_binary (tc_of Workload.Spec.CG);
  checki "FIFO-bounded at capacity" 1 (Kernel.Popcorn.latency_cache_size ());
  (* IS was evicted to make room for CG, so it misses again *)
  spawn_with_binary (tc_of Workload.Spec.IS);
  checkb "evicted entry re-measures" true
    (Kernel.Popcorn.latency_cache_stats () = (0, 3));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument
       "Popcorn.set_latency_cache_capacity: capacity must be >= 1") (fun () ->
      Kernel.Popcorn.set_latency_cache_capacity 0);
  Kernel.Popcorn.set_latency_cache_capacity 64;
  Kernel.Popcorn.latency_cache_clear ()

let suite =
  [
    ("message delivery and accounting", `Quick, message_delivery_latency);
    ("message kinds counted separately", `Quick, message_kinds_separate);
    ("continuation blocks in-kernel migration", `Quick,
     continuation_blocks_in_kernel_migration);
    ("continuation nested services", `Quick, continuation_nested_services);
    ("loader maps multi-ISA binary", `Quick, loader_maps_binary);
    ("loader keeps processes disjoint", `Quick, loader_disjoint_processes);
    ("process runs to completion", `Quick, run_simple_process);
    ("multithreading speeds up", `Quick, multithreaded_parallel_speedup);
    ("x-gene slower than xeon", `Quick, arm_slower_than_x86);
    ("migration moves thread, pages, home", `Quick,
     migration_moves_thread_and_pages);
    ("migration response time bounded", `Quick,
     migration_honoured_at_phase_boundary);
    ("energy accounting within envelope", `Quick, energy_accounting_sane);
    ("sleep power accounting", `Quick, powered_off_burns_sleep_power);
    ("container spans kernels", `Quick, container_spans_during_migration);
    ("multiple containers isolated", `Quick, multiple_containers_isolated);
    ("migration message traffic accounted", `Quick,
     message_traffic_accounted_during_migration);
    ("split threads ping-pong the DSM", `Quick, split_threads_pingpong_dsm);
    ("batched+prefetched migration equivalent", `Quick,
     batched_prefetched_migration_equivalent);
    ("latency cache keyed structurally", `Quick, latency_cache_structural_hits);
    ("latency cache bounded with FIFO eviction", `Quick, latency_cache_bounded);
  ]
