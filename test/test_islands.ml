(* The parallel event core: keyed calendars, the time-island runtime,
   and the fleet scenario built on it. The load-bearing property
   throughout is determinism — the (time, seq, src) total order makes a
   run a pure function of its configuration, never of the domain
   count. *)

let check = Alcotest.check
let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

(* --- Calendar ---------------------------------------------------------- *)

let calendar_pop_order () =
  let keys =
    [ (2.0, 1, 0); (1.0, 0, 0); (1.0, 0, 1); (1.0, 1, 0); (3.0, 0, 2);
      (2.0, 0, 1) ]
  in
  let drain order =
    let cal = Sim.Calendar.create ~dummy:(-1) () in
    List.iteri
      (fun i (time, seq, src) -> Sim.Calendar.push cal ~time ~src ~seq i)
      order;
    List.init (List.length order) (fun _ ->
        let v = Sim.Calendar.pop cal in
        (Sim.Calendar.last_time cal, Sim.Calendar.last_seq cal,
         Sim.Calendar.last_src cal, v))
  in
  let popped = drain keys in
  let popped_keys = List.map (fun (t, q, s, _) -> (t, q, s)) popped in
  check
    (Alcotest.list (Alcotest.triple (Alcotest.float 0.0) Alcotest.int Alcotest.int))
    "(time, seq, src) total order"
    [ (1.0, 0, 0); (1.0, 0, 1); (1.0, 1, 0); (2.0, 0, 1); (2.0, 1, 0);
      (3.0, 0, 2) ]
    popped_keys;
  (* Push order is irrelevant: reversed input, same pop keys. *)
  let rev = List.map (fun (t, q, s, _) -> (t, q, s)) (drain (List.rev keys)) in
  checkb "push-order invariant" true (popped_keys = rev)

let calendar_empty () =
  let cal = Sim.Calendar.create ~dummy:0 () in
  checkb "empty" true (Sim.Calendar.is_empty cal);
  checkb "min_time infinity" true (Sim.Calendar.min_time cal = Float.infinity);
  Alcotest.check_raises "pop on empty"
    (Invalid_argument "Calendar.pop: empty") (fun () ->
      ignore (Sim.Calendar.pop cal))

let calendar_clear_shrinks () =
  let cal = Sim.Calendar.create ~dummy:0 () in
  for i = 0 to 9_999 do
    Sim.Calendar.push cal ~time:(float_of_int i) ~src:0 ~seq:i i
  done;
  let peak = Sim.Calendar.capacity cal in
  checkb "heap grew" true (peak >= 10_000);
  Sim.Calendar.clear cal;
  checkb "capacity shrunk" true (Sim.Calendar.capacity cal < peak);
  checki "emptied" 0 (Sim.Calendar.size cal);
  Sim.Calendar.push cal ~time:1.0 ~src:0 ~seq:0 7;
  checki "still usable" 7 (Sim.Calendar.pop cal)

(* --- Engine.clear ------------------------------------------------------ *)

let engine_clear_shrinks () =
  let e = Sim.Engine.create () in
  for i = 0 to 9_999 do
    Sim.Engine.schedule e ~at:(float_of_int i) ignore
  done;
  let peak = Sim.Engine.capacity e in
  checkb "heap grew" true (peak >= 10_000);
  Sim.Engine.clear e;
  checkb "capacity shrunk" true (Sim.Engine.capacity e < peak);
  checki "no pending events" 0 (Sim.Engine.pending e);
  checkb "clock reset" true (Sim.Engine.now e = 0.0);
  let ran = ref false in
  Sim.Engine.schedule e ~at:2.0 (fun () -> ran := true);
  Sim.Engine.run e;
  checkb "still usable" true !ran;
  (* Explicit shrink target is honoured. *)
  Sim.Engine.clear e;
  for i = 0 to 9_999 do
    Sim.Engine.schedule e ~at:(float_of_int i) ignore
  done;
  Sim.Engine.clear ~shrink_to:512 e;
  checkb "shrink_to honoured" true (Sim.Engine.capacity e <= 512)

(* --- Islands: windows and the lookahead contract ----------------------- *)

let islands_validation () =
  Alcotest.check_raises "lookahead must be positive"
    (Invalid_argument "Islands.create: lookahead must be finite and positive")
    (fun () ->
      ignore (Sim.Islands.create ~islands:2 ~lookahead:0.0 ~seed:1 ()));
  let rt = Sim.Islands.create ~islands:2 ~lookahead:1.0 ~seed:1 () in
  let isl = Sim.Islands.island rt 0 in
  checkb "post below lookahead rejected" true
    (try
       Sim.Islands.post isl ~dst:1 ~after:0.5 ignore;
       false
     with Invalid_argument _ -> true);
  checkb "post to unknown island rejected" true
    (try
       Sim.Islands.post isl ~dst:7 ~after:1.0 ignore;
       false
     with Invalid_argument _ -> true);
  checkb "schedule in the past rejected" true
    (try
       Sim.Islands.schedule isl ~at:(-1.0) ignore;
       false
     with Invalid_argument _ -> true)

(* A post with delay exactly the lookahead lands exactly on the window
   boundary (window_end = next + lookahead) and must execute in a LATER
   window — the strict [time < window_end] rule. With a local event
   already scheduled at the same instant, the (time, seq, src) order
   decides: equal time, equal seq, then the smaller source island id
   goes first. *)
let islands_window_boundary () =
  let rt = Sim.Islands.create ~record:true ~islands:2 ~lookahead:1.0 ~seed:3 () in
  let i0 = Sim.Islands.island rt 0 and i1 = Sim.Islands.island rt 1 in
  let order = ref [] in
  (* Island 1's local event at t=1.0: src=1, seq=0. *)
  Sim.Islands.schedule i1 ~at:1.0 (fun _ -> order := "local" :: !order);
  (* Island 0 at t=0 posts to island 1 with after = lookahead, arriving
     at exactly t=1.0 = the first window's end: src=0, seq=1. *)
  Sim.Islands.schedule i0 ~at:0.0 (fun isl ->
      Sim.Islands.post isl ~dst:1 ~after:1.0 (fun _ ->
          order := "posted" :: !order));
  Sim.Islands.run rt;
  (* Both t=1.0 events ran, and the posted one was NOT pulled into the
     first window: at least two windows were needed. *)
  check (Alcotest.list Alcotest.string) "both executed, src order at the tie"
    [ "posted"; "local" ] !order;
  (* (1.0, 0, 1) local vs (1.0, 1, 0) posted: seq decides before src. *)
  checkb "took more than one window" true (Sim.Islands.windows rt >= 2);
  checki "three events total" 3 (Sim.Islands.events_executed rt);
  (* The merged log is in (time, seq, src) order. *)
  let log = Sim.Islands.log rt in
  checkb "log sorted by key" true
    (List.sort
       (fun (t1, q1, s1, _) (t2, q2, s2, _) -> compare (t1, q1, s1) (t2, q2, s2))
       log
    = log)

let islands_seq_equals_parallel_simple () =
  (* A deterministic ping-pong across three islands, run at 1 and 3
     domains: identical merged logs and event counts. *)
  let build () =
    let rt = Sim.Islands.create ~record:true ~islands:3 ~lookahead:0.5 ~seed:9 () in
    let rec ping hops isl =
      if hops > 0 then begin
        let dst = (Sim.Islands.id isl + 1) mod 3 in
        let jitter = Sim.Prng.float (Sim.Islands.prng isl) 0.25 in
        Sim.Islands.post isl ~dst ~after:(0.5 +. jitter) (ping (hops - 1));
        Sim.Islands.schedule_in isl ~after:0.1 (fun _ -> ())
      end
    in
    for i = 0 to 2 do
      Sim.Islands.schedule (Sim.Islands.island rt i)
        ~at:(0.05 *. float_of_int i)
        (ping 20)
    done;
    rt
  in
  let a = build () and b = build () in
  Sim.Islands.run ~domains:1 a;
  Sim.Islands.run ~domains:3 b;
  checkb "logs identical" true (Sim.Islands.log a = Sim.Islands.log b);
  checki "same event count" (Sim.Islands.events_executed a)
    (Sim.Islands.events_executed b);
  checki "same window count" (Sim.Islands.windows a) (Sim.Islands.windows b)

(* QCheck: random little simulations — random island count, fan-out and
   delays — always produce domain-count-independent logs. *)
let qcheck_islands_deterministic =
  QCheck.Test.make ~name:"island log independent of domain count" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let build () =
        let rt =
          Sim.Islands.create ~record:true ~islands:4 ~lookahead:1.0 ~seed ()
        in
        let rec act depth isl =
          let rng = Sim.Islands.prng isl in
          if depth > 0 then begin
            let fanout = 1 + Sim.Prng.int rng 2 in
            for _ = 1 to fanout do
              let dst = Sim.Prng.int rng 4 in
              let after = 1.0 +. Sim.Prng.float rng 2.0 in
              Sim.Islands.post isl ~dst ~after (act (depth - 1))
            done;
            if Sim.Prng.float rng 1.0 < 0.5 then
              Sim.Islands.schedule_in isl ~after:(Sim.Prng.float rng 0.9)
                (fun _ -> ())
          end
        in
        for i = 0 to 3 do
          Sim.Islands.schedule (Sim.Islands.island rt i)
            ~at:(0.1 *. float_of_int i) (act 4)
        done;
        rt
      in
      let a = build () and b = build () in
      Sim.Islands.run ~domains:1 a;
      Sim.Islands.run ~domains:4 b;
      Sim.Islands.log a = Sim.Islands.log b
      && Sim.Islands.events_executed a = Sim.Islands.events_executed b)

(* --- Per-edge lookahead: topology-aware windows ------------------------- *)

let islands_edge_lookahead_contract () =
  (* A per-edge matrix tightens the post floor edge by edge while the
     window still advances by the matrix minimum (= the scalar floor). *)
  let edge =
    [| [| 0.0; 1.5; 2.0 |]; [| 1.0; 0.0; 3.0 |]; [| 2.5; 1.25; 0.0 |] |]
  in
  let rt =
    Sim.Islands.create ~edge_lookahead:edge ~islands:3 ~lookahead:1.0 ~seed:2 ()
  in
  let i0 = Sim.Islands.island rt 0 and i1 = Sim.Islands.island rt 1 in
  checkb "post at the edge floor accepted" true
    (Sim.Islands.post i1 ~dst:0 ~after:1.0 ignore;
     true);
  checkb "post below its edge floor rejected" true
    (try
       Sim.Islands.post i0 ~dst:2 ~after:1.5 ignore;
       false
     with Invalid_argument _ -> true);
  checkb "even though the scalar floor would allow it" true
    (Sim.Islands.post i0 ~dst:2 ~after:2.0 ignore;
     true)

let islands_edge_lookahead_validation () =
  checkb "ragged matrix rejected" true
    (try
       ignore
         (Sim.Islands.create ~edge_lookahead:[| [| 0.0; 1.0 |] |] ~islands:2
            ~lookahead:1.0 ~seed:2 ());
       false
     with Invalid_argument _ -> true);
  checkb "edge below the scalar lookahead rejected" true
    (try
       ignore
         (Sim.Islands.create
            ~edge_lookahead:[| [| 0.0; 0.5 |]; [| 1.0; 0.0 |] |]
            ~islands:2 ~lookahead:1.0 ~seed:2 ());
       false
     with Invalid_argument _ -> true)

let islands_edge_seq_equals_parallel () =
  (* Heterogeneous edge floors (a fast pair and a slow pair) must keep
     the run a pure function of the configuration. *)
  let edge =
    [| [| 0.0; 0.5; 2.0 |]; [| 0.5; 0.0; 2.0 |]; [| 2.0; 2.0; 0.0 |] |]
  in
  let build () =
    let rt =
      Sim.Islands.create ~record:true ~edge_lookahead:edge ~islands:3
        ~lookahead:0.5 ~seed:11 ()
    in
    let rec ping hops isl =
      if hops > 0 then begin
        let id = Sim.Islands.id isl in
        let dst = (id + 1) mod 3 in
        let floor = edge.(id).(dst) in
        let jitter = Sim.Prng.float (Sim.Islands.prng isl) 0.25 in
        Sim.Islands.post isl ~dst ~after:(floor +. jitter) (ping (hops - 1))
      end
    in
    for i = 0 to 2 do
      Sim.Islands.schedule (Sim.Islands.island rt i)
        ~at:(0.05 *. float_of_int i)
        (ping 15)
    done;
    rt
  in
  let a = build () and b = build () in
  Sim.Islands.run ~domains:1 a;
  Sim.Islands.run ~domains:3 b;
  checkb "logs identical under per-edge floors" true
    (Sim.Islands.log a = Sim.Islands.log b);
  checki "same windows" (Sim.Islands.windows a) (Sim.Islands.windows b)

(* --- Fleet: the end-to-end consumer ------------------------------------ *)

let fleet_render_stable () =
  let cfg = Sched.Fleet.default ~nodes:4 ~jobs:15 ~seed:21 in
  let a = Sched.Fleet.run ~domains:1 cfg in
  let b = Sched.Fleet.run ~domains:3 cfg in
  check Alcotest.string "render byte-identical across domain counts"
    (Sched.Fleet.render cfg a) (Sched.Fleet.render cfg b);
  checki "all jobs accounted" 15
    (a.Sched.Fleet.completed + a.Sched.Fleet.failed);
  checkb "positive makespan" true (a.Sched.Fleet.makespan > 0.0);
  checkb "both ISAs burned energy" true
    (a.Sched.Fleet.energy_x86_j > 0.0 && a.Sched.Fleet.energy_arm_j > 0.0)

let qcheck_fleet_deterministic =
  QCheck.Test.make
    ~name:"fleet report independent of domain count (seeds x faults x policy)"
    ~count:8
    QCheck.(int_bound 10_000)
    (fun raw ->
      let seed = raw mod 1000 in
      let fail_rate = if raw mod 2 = 0 then 0.0 else 0.05 in
      let placement =
        if raw mod 4 < 2 then Sched.Fleet.Least_loaded
        else Sched.Fleet.Round_robin
      in
      let migration = raw mod 3 <> 0 in
      let cfg =
        { (Sched.Fleet.default ~nodes:3 ~jobs:8 ~seed) with
          Sched.Fleet.fail_rate;
          placement;
          migration;
        }
      in
      let a = Sched.Fleet.run ~domains:1 cfg in
      let b = Sched.Fleet.run ~domains:2 cfg in
      Sched.Fleet.render cfg a = Sched.Fleet.render cfg b)

(* --- Cluster: warehouse scale on the island runtime ---------------------- *)

(* The acceptance scenario: 256 mixed-ISA nodes in 8 racks, run
   sequentially and across 8 domains, byte-identical reports. *)
let cluster_256_nodes_byte_identical () =
  let topo = Machine.Topology.make ~racks:8 ~nodes_per_rack:32 () in
  let cfg = Sched.Cluster.default ~topology:topo ~jobs:2000 ~seed:42 in
  let a = Sched.Cluster.run ~domains:1 cfg in
  let b = Sched.Cluster.run ~domains:8 cfg in
  check Alcotest.string "256-node render byte-identical seq vs 8 domains"
    (Sched.Cluster.render cfg a) (Sched.Cluster.render cfg b);
  checki "all jobs complete" 2000 a.Sched.Cluster.completed;
  checkb "the EDP policy migrated work across the fabric" true
    (a.Sched.Cluster.migrations > 0);
  checkb "both ISAs burned energy" true
    (a.Sched.Cluster.energy_x86_j > 0.0 && a.Sched.Cluster.energy_arm_j > 0.0)

let qcheck_cluster_deterministic =
  QCheck.Test.make
    ~name:"cluster report independent of domain count (seeds x topology x policy)"
    ~count:8
    QCheck.(int_bound 10_000)
    (fun raw ->
      let seed = raw mod 1000 in
      let policy =
        match raw mod 3 with
        | 0 -> Sched.Cluster.Pack_power_cap
        | 1 -> Sched.Cluster.Edp_migrate
        | _ -> Sched.Cluster.Work_steal
      in
      let racks, nodes_per_rack =
        match raw mod 4 with 0 -> (1, 6) | 1 -> (2, 4) | 2 -> (3, 4) | _ -> (4, 2)
      in
      let mix =
        if raw mod 2 = 0 then Machine.Topology.Alternate
        else Machine.Topology.Isa_racks
      in
      let topo = Machine.Topology.make ~mix ~racks ~nodes_per_rack () in
      let cfg =
        { (Sched.Cluster.default ~topology:topo ~jobs:40 ~seed) with
          Sched.Cluster.policy }
      in
      let a = Sched.Cluster.run ~domains:1 cfg in
      let b = Sched.Cluster.run ~domains:2 cfg in
      Sched.Cluster.render cfg a = Sched.Cluster.render cfg b)

(* --- Popcorn-ensemble scheduler on the island runtime -------------------- *)

(* The PR-6 leftover: a fig12-scale sustained run driven through
   {!Sim.Islands.drive} (the [~on_islands] flag) must render exactly the
   report the plain sequential engine produces. *)
let scheduler_on_islands_byte_identical () =
  let jobs = Sched.Arrival.sustained ~seed:3 ~jobs:40 in
  let direct = Sched.Scheduler.run Sched.Policy.Dynamic_unbalanced jobs in
  let islanded =
    Sched.Scheduler.run ~on_islands:true Sched.Policy.Dynamic_unbalanced jobs
  in
  checkb "fig12-scale ensemble run byte-identical on the island runtime" true
    (Format.asprintf "%a" Sched.Scheduler.pp_result direct
    = Format.asprintf "%a" Sched.Scheduler.pp_result islanded)

(* --- Workload phase memoization ----------------------------------------- *)

let phase_memo_shares () =
  Workload.Spec.phase_memo_clear ();
  let spec = Workload.Spec.spec Workload.Spec.CG Workload.Spec.A in
  let pages = [ { Memsys.Page.first = 100; count = 64 } ] in
  let a =
    Workload.Spec.phases_for_process spec ~threads:2
      ~quantum_instructions:1e8 ~data_pages:pages
  in
  let b =
    Workload.Spec.phases_for_process spec ~threads:2
      ~quantum_instructions:1e8 ~data_pages:pages
  in
  checkb "second call shares the first expansion" true (a == b);
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "one hit, one miss" (1, 1)
    (Workload.Spec.phase_memo_stats ());
  (* A different key misses and yields a different expansion. *)
  let c =
    Workload.Spec.phases_for_process spec ~threads:4
      ~quantum_instructions:1e8 ~data_pages:pages
  in
  checkb "different thread count is a different entry" true (c != a);
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "two misses now" (1, 2)
    (Workload.Spec.phase_memo_stats ());
  Workload.Spec.phase_memo_clear ();
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "cleared" (0, 0)
    (Workload.Spec.phase_memo_stats ())

let suite =
  [
    Alcotest.test_case "calendar: pop order" `Quick calendar_pop_order;
    Alcotest.test_case "calendar: empty" `Quick calendar_empty;
    Alcotest.test_case "calendar: clear shrinks" `Quick calendar_clear_shrinks;
    Alcotest.test_case "engine: clear shrinks" `Quick engine_clear_shrinks;
    Alcotest.test_case "islands: validation" `Quick islands_validation;
    Alcotest.test_case "islands: window boundary tie-break" `Quick
      islands_window_boundary;
    Alcotest.test_case "islands: seq = parallel (ping-pong)" `Quick
      islands_seq_equals_parallel_simple;
    QCheck_alcotest.to_alcotest qcheck_islands_deterministic;
    Alcotest.test_case "islands: per-edge lookahead contract" `Quick
      islands_edge_lookahead_contract;
    Alcotest.test_case "islands: per-edge matrix validation" `Quick
      islands_edge_lookahead_validation;
    Alcotest.test_case "islands: seq = parallel under edge floors" `Quick
      islands_edge_seq_equals_parallel;
    Alcotest.test_case "fleet: render stable across domains" `Quick
      fleet_render_stable;
    QCheck_alcotest.to_alcotest qcheck_fleet_deterministic;
    Alcotest.test_case "cluster: 256 nodes byte-identical" `Slow
      cluster_256_nodes_byte_identical;
    QCheck_alcotest.to_alcotest qcheck_cluster_deterministic;
    Alcotest.test_case "scheduler: fig12-scale run on islands" `Quick
      scheduler_on_islands_byte_identical;
    Alcotest.test_case "workload: phase expansion memoized" `Quick
      phase_memo_shares;
  ]
