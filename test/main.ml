let () =
  Alcotest.run "hetmig"
    [
      ("sim", Test_sim.suite);
      ("islands", Test_islands.suite);
      ("obs", Test_obs.suite);
      ("isa", Test_isa.suite);
      ("memsys", Test_memsys.suite);
      ("heap", Test_heap.suite);
      ("ir", Test_ir.suite);
      ("binary", Test_binary.suite);
      ("compiler", Test_compiler.suite);
      ("runtime", Test_runtime.suite);
      ("dsm", Test_dsm.suite);
      ("kernel", Test_kernel.suite);
      ("services", Test_services.suite);
      ("render", Test_render.suite);
      ("faults", Test_faults.suite);
      ("determinism", Test_determinism.suite);
      ("machine", Test_machine.suite);
      ("workload", Test_workload.suite);
      ("baseline", Test_baseline.suite);
      ("sched", Test_sched.suite);
      ("serving", Test_serving.suite);
      ("parallel", Test_parallel.suite);
      ("core", Test_core.suite);
      ("analysis", Test_analysis.suite);
      ("audit", Test_audit.suite);
    ]
