let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let specs_scale_with_class () =
  List.iter
    (fun bench ->
      let a = Workload.Spec.spec bench Workload.Spec.A in
      let b = Workload.Spec.spec bench Workload.Spec.B in
      let c = Workload.Spec.spec bench Workload.Spec.C in
      checkb "instructions grow" true
        (a.Workload.Spec.total_instructions < b.Workload.Spec.total_instructions
        && b.Workload.Spec.total_instructions < c.Workload.Spec.total_instructions);
      checkb "footprint monotone" true
        (a.Workload.Spec.footprint_bytes <= b.Workload.Spec.footprint_bytes
        && b.Workload.Spec.footprint_bytes <= c.Workload.Spec.footprint_bytes))
    Workload.Spec.all_benches

let spec_names () =
  let s = Workload.Spec.spec Workload.Spec.CG Workload.Spec.B in
  Alcotest.check Alcotest.string "name" "cg.B" s.Workload.Spec.name

let spec_mix_covers_categories () =
  (* The paper's pool mixes memory-, compute-, and branch-intensive jobs. *)
  let cats =
    List.sort_uniq compare
      (List.map
         (fun b ->
           (Workload.Spec.spec b Workload.Spec.A).Workload.Spec.category)
         Workload.Spec.all_benches)
  in
  checkb "at least 3 distinct categories" true (List.length cats >= 3)

let phases_partition_work () =
  let spec = Workload.Spec.spec Workload.Spec.CG Workload.Spec.A in
  List.iter
    (fun threads ->
      let per_thread =
        Workload.Spec.phases spec ~threads ~quantum_instructions:5e7
      in
      checki "one list per thread" threads (List.length per_thread);
      let total =
        List.fold_left
          (fun acc phases ->
            List.fold_left
              (fun a (p : Kernel.Process.phase) ->
                a +. p.Kernel.Process.instructions)
              acc phases)
          0.0 per_thread
      in
      checkb "work conserved" true
        (Float.abs (total -. spec.Workload.Spec.total_instructions)
        < spec.Workload.Spec.total_instructions *. 1e-6);
      List.iter
        (fun phases ->
          List.iter
            (fun (p : Kernel.Process.phase) ->
              checkb "phase within quantum" true
                (p.Kernel.Process.instructions <= 5e7 +. 1.0))
            phases)
        per_thread)
    [ 1; 2; 4; 8 ]

let phases_touch_pages () =
  let spec = Workload.Spec.spec Workload.Spec.IS Workload.Spec.A in
  let ranges = [ { Memsys.Page.first = 1000; count = 100 } ] in
  let pages = Memsys.Page.ranges_pages ranges in
  let per_thread =
    Workload.Spec.phases_for_process spec ~threads:2 ~quantum_instructions:1e8
      ~data_pages:ranges
  in
  List.iter
    (fun phases ->
      List.iter
        (fun (p : Kernel.Process.phase) ->
          checkb "pages from the process" true
            (List.for_all (fun pg -> List.mem pg pages) p.Kernel.Process.pages);
          checkb "memory-bound phases write" true p.Kernel.Process.writes)
        phases)
    per_thread

let phases_validation () =
  let spec = Workload.Spec.spec Workload.Spec.EP Workload.Spec.A in
  checkb "zero threads rejected" true
    (try
       ignore (Workload.Spec.phases spec ~threads:0 ~quantum_instructions:1e8);
       false
     with Invalid_argument _ -> true)

let programs_wellformed () =
  List.iter
    (fun bench ->
      List.iter
        (fun cls ->
          let prog = Workload.Programs.program bench cls in
          List.iter
            (fun (_, func) ->
              match Ir.Liveness.check_uses_defined func with
              | Ok _ -> ()
              | Error v ->
                Alcotest.fail
                  (Printf.sprintf "%s: undefined %s" prog.Ir.Prog.name v))
            prog.Ir.Prog.funcs)
        Workload.Spec.classes)
    Workload.Spec.all_benches

let programs_match_spec_totals () =
  List.iter
    (fun bench ->
      List.iter
        (fun cls ->
          let spec = Workload.Spec.spec bench cls in
          let prog = Workload.Programs.program bench cls in
          let ratio =
            Workload.Programs.total_dynamic prog
            /. spec.Workload.Spec.total_instructions
          in
          checkb
            (Printf.sprintf "%s within 25%% of spec (%.2f)"
               spec.Workload.Spec.name ratio)
            true
            (ratio > 0.75 && ratio < 1.25))
        Workload.Spec.classes)
    Workload.Spec.all_benches

let programs_not_recursive () =
  List.iter
    (fun bench ->
      let prog = Workload.Programs.program bench Workload.Spec.A in
      checkb "acyclic" false (Ir.Callgraph.is_recursive (Ir.Callgraph.build prog)))
    Workload.Spec.all_benches

let ft_deep_call_chain () =
  (* The paper's FT fftz2 example: 7-frame stacks. *)
  let prog = Workload.Programs.program Workload.Spec.FT Workload.Spec.A in
  checki "depth 7" 7 (Workload.Programs.deepest_chain prog)

let programs_have_pointer_state () =
  (* Every benchmark must exercise the pointer-fixup path. *)
  List.iter
    (fun bench ->
      let prog = Workload.Programs.program bench Workload.Spec.A in
      let rec has_ptr body =
        List.exists
          (function
            | Ir.Prog.Def { init = Ir.Prog.Ptr_to_local _ | Ir.Prog.Ptr_to_global _; _ } ->
              true
            | Ir.Prog.Loop l -> has_ptr l.Ir.Prog.body
            | Ir.Prog.Def _ | Ir.Prog.Work _ | Ir.Prog.Use _ | Ir.Prog.Call _
            | Ir.Prog.Mig_point _ -> false)
          body
      in
      checkb
        (Workload.Spec.bench_to_string bench ^ " has pointer locals")
        true
        (List.exists (fun (_, f) -> has_ptr f.Ir.Prog.body) prog.Ir.Prog.funcs))
    [ Workload.Spec.CG; Workload.Spec.IS; Workload.Spec.FT; Workload.Spec.BT;
      Workload.Spec.SP; Workload.Spec.MG; Workload.Spec.Bzip2smp;
      Workload.Spec.Verus; Workload.Spec.Redis ]

let programs_have_tls () =
  List.iter
    (fun bench ->
      let prog = Workload.Programs.program bench Workload.Spec.A in
      checkb "has a TLS symbol" true
        (List.exists
           (fun s ->
             s.Memsys.Symbol.section = Memsys.Symbol.Tdata
             || s.Memsys.Symbol.section = Memsys.Symbol.Tbss)
           prog.Ir.Prog.globals))
    Workload.Spec.all_benches

let is_has_full_verify () =
  (* Figure 11 offloads IS's full_verify(); the model must name it. *)
  let prog = Workload.Programs.program Workload.Spec.IS Workload.Spec.B in
  checkb "full_verify exists" true
    (match Ir.Prog.find_func prog "full_verify" with
    | _ -> true
    | exception Not_found -> false)

let all_programs_compile_and_migrate () =
  (* End-to-end: every benchmark compiles and survives migration at its
     first reachable site in both directions. *)
  List.iter
    (fun bench ->
      let tc =
        Compiler.Toolchain.compile (Workload.Programs.program bench Workload.Spec.A)
      in
      match Runtime.Interp.reachable_mig_sites tc with
      | [] -> Alcotest.fail "no migration points"
      | (fname, mig_id) :: _ ->
        List.iter
          (fun arch ->
            match Runtime.Interp.state_at tc arch ~fname ~mig_id with
            | None -> Alcotest.fail "unreached"
            | Some st -> begin
              match Runtime.Transform.transform tc st with
              | Error e -> Alcotest.fail e
              | Ok (dst, _) -> begin
                match Runtime.Transform.verify tc st dst with
                | Ok () -> ()
                | Error e -> Alcotest.fail e
              end
            end)
          Isa.Arch.all)
    Workload.Spec.all_benches

let suite =
  [
    ("specs scale with class", `Quick, specs_scale_with_class);
    ("spec names", `Quick, spec_names);
    ("benchmark pool covers categories", `Quick, spec_mix_covers_categories);
    ("phases partition the work", `Quick, phases_partition_work);
    ("phases touch process pages", `Quick, phases_touch_pages);
    ("phases validation", `Quick, phases_validation);
    ("programs well-formed", `Quick, programs_wellformed);
    ("program totals match specs", `Quick, programs_match_spec_totals);
    ("programs not recursive", `Quick, programs_not_recursive);
    ("FT has the paper's 7-deep chain", `Quick, ft_deep_call_chain);
    ("programs exercise pointers", `Quick, programs_have_pointer_state);
    ("programs declare TLS", `Quick, programs_have_tls);
    ("IS models full_verify", `Quick, is_has_full_verify);
    ("all benchmarks compile and migrate", `Slow, all_programs_compile_and_migrate);
  ]
