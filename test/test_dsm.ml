let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checkf msg = Alcotest.check (Alcotest.float 1e-12) msg

let make_dsm () =
  Dsm.Hdsm.create ~nodes:2 ~interconnect:Machine.Interconnect.dolphin_pxh810 ()

let initial_exclusive () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkb "owner exclusive" true (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Exclusive);
  checkb "other invalid" true (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Invalid);
  checki "owner" 0 (Dsm.Hdsm.owner d ~page:1)

let local_hits_free () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkf "local read free" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:1 ~write:false);
  checkf "local write free" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:1 ~write:true);
  checki "two hits" 2 (Dsm.Hdsm.stats d).Dsm.Hdsm.local_hits

let read_miss_fetches_shared () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false in
  checkb "remote fetch costs" true (lat > 0.0);
  checkb "now shared at both" true
    (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Shared
    && Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Shared);
  checkf "second read local" 0.0 (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false)

let write_invalidates () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  ignore (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false);
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  checkb "invalidation costs" true (lat > 0.0);
  checkb "writer exclusive" true
    (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Exclusive);
  checkb "old owner invalidated" true
    (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Invalid);
  checki "ownership moved" 1 (Dsm.Hdsm.owner d ~page:1);
  checki "one invalidation" 1 (Dsm.Hdsm.stats d).Dsm.Hdsm.invalidations

let write_miss_fetch_and_invalidate () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let lat = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  (* Fetch + invalidate the old copy. *)
  checkb "costs both" true (lat > 0.0);
  checkb "writer exclusive" true
    (Dsm.Hdsm.state_of d ~page:1 1 = Dsm.Hdsm.Exclusive)

let aliased_pages_never_move () =
  let d = make_dsm () in
  Dsm.Hdsm.register_alias d ~page:9;
  checkf "free everywhere read" 0.0 (Dsm.Hdsm.access d ~node:1 ~page:9 ~write:false);
  checkf "free everywhere exec" 0.0 (Dsm.Hdsm.access d ~node:0 ~page:9 ~write:false);
  checkb "always shared" true (Dsm.Hdsm.state_of d ~page:9 0 = Dsm.Hdsm.Shared);
  checkb "not counted as owned" true (Dsm.Hdsm.pages_owned_by d 0 = [])

let unknown_page_rejected () =
  let d = make_dsm () in
  checkb "raises" true
    (try
       ignore (Dsm.Hdsm.access d ~node:0 ~page:404 ~write:false);
       false
     with Invalid_argument _ -> true)

let unknown_node_rejected () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  checkb "raises" true
    (try
       ignore (Dsm.Hdsm.access d ~node:7 ~page:1 ~write:false);
       false
     with Invalid_argument _ -> true)

let residual_and_drain () =
  let d = make_dsm () in
  for p = 0 to 9 do
    Dsm.Hdsm.register_page d ~page:p ~owner:0
  done;
  checki "10 residual" 10 (Dsm.Hdsm.residual_pages d ~home:0);
  let lat = Dsm.Hdsm.drain d ~from_:0 ~to_:1 in
  checkb "drain costs" true (lat > 0.0);
  checki "none left" 0 (Dsm.Hdsm.residual_pages d ~home:0);
  checki "all at new home" 10 (Dsm.Hdsm.residual_pages d ~home:1)

let drain_pages_partial () =
  let d = make_dsm () in
  for p = 0 to 9 do
    Dsm.Hdsm.register_page d ~page:p ~owner:0
  done;
  let lat = Dsm.Hdsm.drain_pages d ~pages:[ 0; 1; 2 ] ~to_:1 in
  checkb "costs" true (lat > 0.0);
  checki "7 residual" 7 (Dsm.Hdsm.residual_pages d ~home:0);
  (* Draining pages already at the destination is free. *)
  checkf "idempotent free" 0.0 (Dsm.Hdsm.drain_pages d ~pages:[ 0; 1; 2 ] ~to_:1)

let page_migration_makes_access_local () =
  (* The hDSM rationale: after migration, accesses are local rather than
     repeatedly remote. *)
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  let first = Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true in
  let rest =
    List.init 100 (fun _ -> Dsm.Hdsm.access d ~node:1 ~page:1 ~write:true)
  in
  checkb "first access pays" true (first > 0.0);
  checkb "rest free" true (List.for_all (fun l -> l = 0.0) rest)

let stats_bytes_accounted () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  ignore (Dsm.Hdsm.access d ~node:1 ~page:1 ~write:false);
  checki "one page of traffic" Memsys.Page.size
    (Dsm.Hdsm.stats d).Dsm.Hdsm.bytes_transferred;
  Dsm.Hdsm.reset_stats d;
  checki "reset" 0 (Dsm.Hdsm.stats d).Dsm.Hdsm.bytes_transferred

(* Invariant: single writer / multiple readers, owner always has a copy. *)
let coherence_random_props =
  QCheck.Test.make ~name:"hDSM invariants under random access interleavings"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sim.Prng.create seed in
      let nodes = 2 + Sim.Prng.int rng 3 in
      let d =
        Dsm.Hdsm.create ~nodes ~interconnect:Machine.Interconnect.dolphin_pxh810
          ()
      in
      let pages = 1 + Sim.Prng.int rng 8 in
      for p = 0 to pages - 1 do
        Dsm.Hdsm.register_page d ~page:p ~owner:(Sim.Prng.int rng nodes)
      done;
      let ok = ref true in
      for _ = 1 to 200 do
        let node = Sim.Prng.int rng nodes in
        let page = Sim.Prng.int rng pages in
        let write = Sim.Prng.bool rng in
        let (_ : float) = Dsm.Hdsm.access d ~node ~page ~write in
        (* After any access: the accessing node holds a valid copy; if it
           wrote, it is the exclusive owner and everyone else is invalid. *)
        let st = Dsm.Hdsm.state_of d ~page node in
        if st = Dsm.Hdsm.Invalid then ok := false;
        if write then begin
          if st <> Dsm.Hdsm.Exclusive then ok := false;
          if Dsm.Hdsm.owner d ~page <> node then ok := false;
          for other = 0 to nodes - 1 do
            if other <> node && Dsm.Hdsm.state_of d ~page other <> Dsm.Hdsm.Invalid
            then ok := false
          done
        end
      done;
      !ok)

(* --- batched transfers, aliasing guard, prefetch ------------------------ *)

let make_batched () =
  Dsm.Hdsm.create ~batch:true ~nodes:2
    ~interconnect:Machine.Interconnect.dolphin_pxh810 ()

let alias_guard_rejects_data_pages () =
  let d = make_dsm () in
  Dsm.Hdsm.register_page d ~page:1 ~owner:0;
  Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 10; count = 4 } ~owner:1;
  Dsm.Hdsm.register_alias d ~page:5;
  (* Idempotent on an already-aliased page. *)
  Dsm.Hdsm.register_alias d ~page:5;
  let rejects page =
    try
      Dsm.Hdsm.register_alias d ~page;
      false
    with Invalid_argument _ -> true
  in
  checkb "rejects an individually registered data page" true (rejects 1);
  checkb "rejects a page inside a lazy data range" true (rejects 12);
  (* The failed attempts must not have clobbered coherence state. *)
  checki "page keeps its owner" 0 (Dsm.Hdsm.owner d ~page:1);
  checki "range page keeps its owner" 1 (Dsm.Hdsm.owner d ~page:12);
  checkb "still exclusive at owner" true
    (Dsm.Hdsm.state_of d ~page:1 0 = Dsm.Hdsm.Exclusive)

let fetch_run_uniform_batches () =
  let d = make_batched () in
  Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 0; count = 8 } ~owner:0;
  let lat = Dsm.Hdsm.fetch_run d ~node:1 ~first:0 ~count:8 ~write:true in
  checkb "uniform run coalesces" true (lat <> None);
  for p = 0 to 7 do
    checki "ownership moved" 1 (Dsm.Hdsm.owner d ~page:p)
  done;
  let st = Dsm.Hdsm.stats d in
  checki "one round trip" 1 st.Dsm.Hdsm.protocol_msgs;
  checki "all pages counted" 8 st.Dsm.Hdsm.remote_fetches;
  checki "all bytes counted" (8 * Memsys.Page.size) st.Dsm.Hdsm.bytes_transferred

let fetch_run_nonuniform_refuses () =
  let d = make_batched () in
  Dsm.Hdsm.register_page d ~page:0 ~owner:0;
  Dsm.Hdsm.register_page d ~page:1 ~owner:1;
  (* Mixed owners: node 1 already owns page 1. *)
  checkb "mixed-owner run refused" true
    (Dsm.Hdsm.fetch_run d ~node:1 ~first:0 ~count:2 ~write:true = None);
  checki "no state change" 0 (Dsm.Hdsm.owner d ~page:0);
  checki "no traffic" 0 (Dsm.Hdsm.stats d).Dsm.Hdsm.remote_fetches;
  (* A shared copy at a third party also breaks uniformity. *)
  let d3 =
    Dsm.Hdsm.create ~batch:true ~nodes:3
      ~interconnect:Machine.Interconnect.dolphin_pxh810 ()
  in
  Dsm.Hdsm.register_page d3 ~page:0 ~owner:0;
  Dsm.Hdsm.register_page d3 ~page:1 ~owner:0;
  ignore (Dsm.Hdsm.access d3 ~node:2 ~page:1 ~write:false);
  checkb "sharer in run refused" true
    (Dsm.Hdsm.fetch_run d3 ~node:1 ~first:0 ~count:2 ~write:true = None)

let batching_cheaper_than_per_page () =
  let run batch =
    let d =
      Dsm.Hdsm.create ~batch ~nodes:2
        ~interconnect:Machine.Interconnect.dolphin_pxh810 ()
    in
    Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 0; count = 64 }
      ~owner:0;
    let lat =
      Dsm.Hdsm.access_many d ~node:1 ~pages:(List.init 64 Fun.id) ~write:true
    in
    (lat, Dsm.Hdsm.stats d)
  in
  let lat_pp, st_pp = run false in
  let lat_b, st_b = run true in
  checkb "coalesced run at least 10x cheaper" true (lat_pp > 10.0 *. lat_b);
  checki "same pages moved" st_pp.Dsm.Hdsm.remote_fetches
    st_b.Dsm.Hdsm.remote_fetches;
  checki "same bytes moved" st_pp.Dsm.Hdsm.bytes_transferred
    st_b.Dsm.Hdsm.bytes_transferred;
  checki "same invalidations" st_pp.Dsm.Hdsm.invalidations
    st_b.Dsm.Hdsm.invalidations;
  checkb "fewer round trips" true
    (st_b.Dsm.Hdsm.protocol_msgs < st_pp.Dsm.Hdsm.protocol_msgs)

let prefetch_moves_and_localizes () =
  let d = make_batched () in
  Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 0; count = 16 } ~owner:0;
  (* Partially materialize the range first. *)
  ignore (Dsm.Hdsm.access d ~node:1 ~page:3 ~write:true);
  let lat = Dsm.Hdsm.prefetch d ~pages:(List.init 16 Fun.id) ~to_:1 in
  checkb "prefetch costs" true (lat > 0.0);
  checki "only the 15 remote pages pushed" 15
    (Dsm.Hdsm.stats d).Dsm.Hdsm.prefetched_pages;
  checki "nothing left at the source" 0 (Dsm.Hdsm.residual_pages d ~home:0);
  checkf "subsequent access local" 0.0
    (Dsm.Hdsm.access d ~node:1 ~page:9 ~write:true);
  (* Prefetching pages already at the destination is free. *)
  checkf "idempotent free" 0.0
    (Dsm.Hdsm.prefetch d ~pages:(List.init 16 Fun.id) ~to_:1)

let adjacent_ranges_share_boundary () =
  List.iter
    (fun batch ->
      let d =
        Dsm.Hdsm.create ~batch ~nodes:2
          ~interconnect:Machine.Interconnect.dolphin_pxh810 ()
      in
      Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 0; count = 4 }
        ~owner:0;
      (* Overlaps the first range on page 3: first registration wins. *)
      Dsm.Hdsm.register_range d ~range:{ Memsys.Page.first = 3; count = 4 }
        ~owner:1;
      checki "boundary page keeps first owner" 0 (Dsm.Hdsm.owner d ~page:3);
      checki "remainder gets second owner" 1 (Dsm.Hdsm.owner d ~page:4);
      (* A run crossing the ownership boundary still coheres correctly. *)
      ignore
        (Dsm.Hdsm.access_many d ~node:1 ~pages:[ 2; 3; 4; 5 ] ~write:true);
      List.iter (fun p -> checki "node 1 owns after write" 1 (Dsm.Hdsm.owner d ~page:p))
        [ 2; 3; 4; 5 ])
    [ false; true ]

(* Batched and per-page protocols must be observationally equivalent:
   identical final coherence state and identical page/byte/invalidation
   accounting; only latency and protocol_msgs may differ. *)
let batch_equivalence_prop =
  QCheck.Test.make
    ~name:"batched transfers reach the per-page coherence state and traffic"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let nodes = 2 + Sim.Prng.int (Sim.Prng.create seed) 2 in
      let build batch =
        let rng = Sim.Prng.create seed in
        ignore (Sim.Prng.int rng 2);
        let d =
          Dsm.Hdsm.create ~batch ~nodes
            ~interconnect:Machine.Interconnect.dolphin_pxh810 ()
        in
        (* A few lazy ranges (some adjacent) plus stray single pages. *)
        Dsm.Hdsm.register_range d
          ~range:{ Memsys.Page.first = 0; count = 12 }
          ~owner:(Sim.Prng.int rng nodes);
        Dsm.Hdsm.register_range d
          ~range:{ Memsys.Page.first = 12; count = 8 }
          ~owner:(Sim.Prng.int rng nodes);
        Dsm.Hdsm.register_page d ~page:20 ~owner:(Sim.Prng.int rng nodes);
        Dsm.Hdsm.register_alias d ~page:21;
        for _ = 1 to 30 do
          let node = Sim.Prng.int rng nodes in
          let write = Sim.Prng.bool rng in
          let first = Sim.Prng.int rng 20 in
          let len = 1 + Sim.Prng.int rng (22 - first - 1) in
          let pages = List.init len (fun i -> first + i) in
          ignore (Dsm.Hdsm.access_many d ~node ~pages ~write)
        done;
        d
      in
      let d_pp = build false and d_b = build true in
      let same_state =
        List.for_all
          (fun page ->
            Dsm.Hdsm.owner d_pp ~page = Dsm.Hdsm.owner d_b ~page
            && List.for_all
                 (fun node ->
                   Dsm.Hdsm.state_of d_pp ~page node
                   = Dsm.Hdsm.state_of d_b ~page node)
                 (List.init nodes Fun.id))
          (List.init 21 Fun.id)
      in
      let s_pp = Dsm.Hdsm.stats d_pp and s_b = Dsm.Hdsm.stats d_b in
      same_state
      && s_pp.Dsm.Hdsm.remote_fetches = s_b.Dsm.Hdsm.remote_fetches
      && s_pp.Dsm.Hdsm.bytes_transferred = s_b.Dsm.Hdsm.bytes_transferred
      && s_pp.Dsm.Hdsm.invalidations = s_b.Dsm.Hdsm.invalidations
      && s_pp.Dsm.Hdsm.local_hits = s_b.Dsm.Hdsm.local_hits)

let suite =
  [
    ("fresh page exclusive at owner", `Quick, initial_exclusive);
    ("local hits are free", `Quick, local_hits_free);
    ("read miss fetches shared copy", `Quick, read_miss_fetches_shared);
    ("write invalidates other copies", `Quick, write_invalidates);
    ("write miss fetches and invalidates", `Quick, write_miss_fetch_and_invalidate);
    ("aliased text pages never move", `Quick, aliased_pages_never_move);
    ("unknown page rejected", `Quick, unknown_page_rejected);
    ("unknown node rejected", `Quick, unknown_node_rejected);
    ("residual tracking and drain", `Quick, residual_and_drain);
    ("partial drain", `Quick, drain_pages_partial);
    ("page migration localizes access", `Quick, page_migration_makes_access_local);
    ("traffic statistics", `Quick, stats_bytes_accounted);
    ("alias guard protects data pages", `Quick, alias_guard_rejects_data_pages);
    ("fetch_run coalesces a uniform run", `Quick, fetch_run_uniform_batches);
    ("fetch_run refuses non-uniform runs", `Quick, fetch_run_nonuniform_refuses);
    ("batching cheaper, same traffic", `Quick, batching_cheaper_than_per_page);
    ("prefetch moves and localizes", `Quick, prefetch_moves_and_localizes);
    ("adjacent ranges share a boundary page", `Quick,
     adjacent_ranges_share_boundary);
    QCheck_alcotest.to_alcotest coherence_random_props;
    QCheck_alcotest.to_alcotest batch_equivalence_prop;
  ]
