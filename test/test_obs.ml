let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checks msg = Alcotest.check Alcotest.string msg
let checkf msg = Alcotest.check (Alcotest.float 0.0) msg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* --- events and spans --------------------------------------------------- *)

let span_api () =
  let t = Obs.create () in
  checkb "enabled" true (Obs.enabled t);
  Obs.complete t ~ts:1.0 ~dur:0.5 ~pid:0 ~tid:100 ~cat:"phase" ~name:"compute"
    ();
  Obs.instant t ~ts:1.5 ~pid:0 ~tid:100 ~cat:"job" ~name:"job_start" ();
  let s = Obs.begin_span t ~ts:2.0 ~pid:1 ~tid:101 ~cat:"migration" ~name:"m" () in
  Obs.end_span t s ~ts:2.25 ();
  checki "three events" 3 (Obs.event_count t);
  let all = Obs.spans t in
  checki "two complete spans" 2 (List.length all);
  let m = Obs.spans ~cat:"migration" t in
  checki "filter by cat" 1 (List.length m);
  let v = List.hd m in
  checkf "span duration" 0.25 v.Obs.v_dur;
  checki "span pid" 1 v.Obs.v_pid;
  checks "span name" "m" v.Obs.v_name;
  checki "name filter" 1 (List.length (Obs.spans ~name:"compute" t))

let spans_in_recording_order () =
  let t = Obs.create () in
  List.iter
    (fun (ts, dur) ->
      Obs.complete t ~ts ~dur ~pid:0 ~tid:0 ~cat:"c" ~name:"n" ())
    [ (3.0, 0.1); (1.0, 0.2); (2.0, 0.3) ];
  checkb "recording order, not time order" true
    (List.map (fun v -> v.Obs.v_dur) (Obs.spans t) = [ 0.1; 0.2; 0.3 ])

(* --- metrics ------------------------------------------------------------ *)

let metrics_api () =
  let t = Obs.create () in
  Obs.incr t "jobs";
  Obs.incr ~by:4 t "jobs";
  Obs.gauge t "load" 0.5;
  Obs.gauge t "load" 0.75;
  Obs.observe t "lat_us" 10.0;
  Obs.observe t "lat_us" 1000.0;
  checkb "counter" true (Obs.counter_value t "jobs" = Some 5);
  checkb "gauge holds last" true (Obs.gauge_value t "load" = Some 0.75);
  checkb "histogram samples in order" true
    (Obs.histogram_samples t "lat_us" = Some [ 10.0; 1000.0 ]);
  checkb "missing metric" true (Obs.counter_value t "nope" = None)

let metric_kind_conflict () =
  let t = Obs.create () in
  Obs.incr t "x";
  Alcotest.check_raises "counter as gauge"
    (Invalid_argument "Obs: metric \"x\" is a counter, not a gauge") (fun () ->
      Obs.gauge t "x" 1.0);
  Alcotest.check_raises "counter as histogram"
    (Invalid_argument "Obs: metric \"x\" is a counter, not a histogram")
    (fun () -> Obs.observe t "x" 1.0)

(* --- the no-op sink ----------------------------------------------------- *)

let noop_records_nothing () =
  let t = Obs.noop in
  checkb "disabled" false (Obs.enabled t);
  Obs.complete t ~ts:0.0 ~dur:1.0 ~pid:0 ~tid:0 ~cat:"c" ~name:"n" ();
  Obs.incr t "c";
  Obs.gauge t "g" 1.0;
  Obs.observe t "h" 1.0;
  let s = Obs.begin_span t ~ts:0.0 ~pid:0 ~tid:0 ~cat:"c" ~name:"n" () in
  Obs.end_span t s ~ts:1.0 ();
  checki "no events" 0 (Obs.event_count t);
  checkb "no spans" true (Obs.spans t = []);
  checkb "no metrics" true (Obs.counter_value t "c" = None);
  checks "empty trace" "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"
    (Obs.chrome_json t);
  checks "empty metrics"
    "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n" (Obs.metrics_json t);
  checks "empty text" "" (Obs.metrics_text t)

(* --- exporters ---------------------------------------------------------- *)

let fill t =
  Obs.process_name t ~pid:0 "node0";
  Obs.thread_name t ~pid:0 ~tid:100 "is.A/t100";
  Obs.complete t ~ts:1e-3 ~dur:5e-4 ~pid:0 ~tid:100 ~cat:"phase"
    ~name:"compute"
    ~args:[ ("instructions", Obs.F 1e8); ("n", Obs.I 3); ("s", Obs.S "x") ]
    ();
  Obs.instant t ~ts:2e-3 ~pid:1001 ~tid:0 ~cat:"job" ~name:"job_submit"
    ~args:[ ("jid", Obs.I 7) ]
    ();
  Obs.counter_sample t ~ts:3e-3 ~pid:1001 ~name:"node_load"
    ~args:[ ("node0", Obs.I 2); ("node1", Obs.I 1) ];
  Obs.incr t "b.counter";
  Obs.incr t "a.counter";
  Obs.gauge t "z.gauge" 1.5;
  Obs.observe t "m.hist" 123.0

let chrome_export_shape () =
  let t = Obs.create () in
  fill t;
  let j = Obs.chrome_json t in
  List.iter
    (fun needle -> checkb needle true (contains j needle))
    [
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"node0\"}}";
      "{\"ph\":\"M\",\"pid\":0,\"tid\":100,\"name\":\"thread_name\",\"args\":{\"name\":\"is.A/t100\"}}";
      (* ts/dur in microseconds: 1e-3 s -> 1000.000 us *)
      "{\"ph\":\"X\",\"ts\":1000.000,\"dur\":500.000,\"pid\":0,\"tid\":100,\"cat\":\"phase\",\"name\":\"compute\"";
      "\"args\":{\"instructions\":1e+08,\"n\":3,\"s\":\"x\"}";
      "{\"ph\":\"i\",\"ts\":2000.000,\"s\":\"t\",\"pid\":1001,\"tid\":0,\"cat\":\"job\",\"name\":\"job_submit\",\"args\":{\"jid\":7}}";
      "{\"ph\":\"C\",\"ts\":3000.000,\"pid\":1001,\"tid\":0,\"name\":\"node_load\",\"args\":{\"node0\":2,\"node1\":1}}";
    ]

let exporters_byte_stable () =
  let a = Obs.create () and b = Obs.create () in
  fill a;
  fill b;
  checks "chrome_json" (Obs.chrome_json a) (Obs.chrome_json b);
  checks "metrics_json" (Obs.metrics_json a) (Obs.metrics_json b);
  checks "metrics_text" (Obs.metrics_text a) (Obs.metrics_text b);
  (* sorted sections regardless of registration order *)
  let mj = Obs.metrics_json a in
  checkb "counters sorted" true
    (contains mj "\"a.counter\": 1,\n    \"b.counter\": 1");
  checkb "histogram rendered" true
    (contains mj "\"m.hist\": {\"n\": 1, \"base\": 10, \"counts\": ")

(* --- zero-cost off switch over a real run -------------------------------- *)

let plan =
  Faults.Plan.make ~seed:5
    ~messages:
      [ { Faults.Plan.kind = "*"; drop = 0.3; delay = 0.3; delay_s = 200e-6 } ]
    ~retry_budget:2 ()

let run_scenario obs =
  Sched.Scheduler.run ~faults:plan ~obs Sched.Policy.Dynamic_balanced
    (Sched.Arrival.sustained ~seed:11 ~jobs:8)

let observed_equals_unobserved () =
  let obs = Obs.create () in
  let r_obs = run_scenario obs in
  let r_plain = run_scenario Obs.noop in
  checkb "same result record" true (r_obs = r_plain);
  checkb "something was recorded" true (Obs.event_count obs > 0)

(* --- reconciliation: spans replay the aggregates exactly ------------------ *)

let sum_durs spans =
  List.fold_left (fun acc (s : Obs.span_view) -> acc +. s.Obs.v_dur) 0.0 spans

let reconciliation_prop =
  QCheck.Test.make
    ~name:"migration/drain span durations fold to the aggregates exactly"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let policy =
        if seed mod 2 = 0 then Sched.Policy.Dynamic_balanced
        else Sched.Policy.Dynamic_unbalanced
      in
      let rate = [| 0.0; 0.2; 0.6 |].(seed mod 3) in
      let faults =
        if rate = 0.0 then None
        else
          Some
            (Faults.Plan.make ~seed
               ~messages:
                 [ { Faults.Plan.kind = "*"; drop = rate; delay = rate;
                     delay_s = 200e-6 } ]
               ~retry_budget:2 ())
      in
      let obs = Obs.create () in
      let r =
        Sched.Scheduler.run ?faults ~obs policy
          (Sched.Arrival.sustained ~seed ~jobs:6)
      in
      let migrate = Obs.spans ~cat:"migration" ~name:"migrate" obs in
      let drains = Obs.spans ~cat:"migration" ~name:"drain" obs in
      (* exact float equality: the spans record the very additions the
         aggregates accumulated, in the same order *)
      sum_durs migrate = r.Sched.Scheduler.downtime_s
      && sum_durs drains = r.Sched.Scheduler.drain_time_s
      && List.length migrate
         = r.Sched.Scheduler.migrations + r.Sched.Scheduler.migration_aborts)

let suite =
  [
    ("span API", `Quick, span_api);
    ("spans keep recording order", `Quick, spans_in_recording_order);
    ("metrics API", `Quick, metrics_api);
    ("metric kind conflicts raise", `Quick, metric_kind_conflict);
    ("noop sink records nothing", `Quick, noop_records_nothing);
    ("chrome export shape", `Quick, chrome_export_shape);
    ("exporters byte-stable", `Quick, exporters_byte_stable);
    ("observed run equals unobserved run", `Slow, observed_equals_unobserved);
    QCheck_alcotest.to_alcotest reconciliation_prop;
  ]
