let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let arrival_sustained_shape () =
  let jobs = Sched.Arrival.sustained ~seed:3 ~jobs:40 in
  checki "40 jobs" 40 (List.length jobs);
  List.iter
    (fun (j : Sched.Job.t) ->
      checkb "arrive at t=0" true (j.Sched.Job.arrival = 0.0);
      checkb "1-4 threads" true (j.Sched.Job.threads >= 1 && j.Sched.Job.threads <= 4))
    jobs

let arrival_periodic_shape () =
  let jobs = Sched.Arrival.periodic ~seed:4 ~waves:5 ~max_per_wave:14 in
  checkb "jobs exist" true (List.length jobs > 0);
  checkb "at most 70" true (List.length jobs <= 70);
  let times = List.sort_uniq compare (List.map (fun j -> j.Sched.Job.arrival) jobs) in
  checki "five distinct wave times" 5 (List.length times);
  (* Wave spacing within 60..240 s. *)
  let rec gaps = function
    | a :: (b :: _ as rest) ->
      checkb "spacing in range" true (b -. a >= 60.0 && b -. a <= 240.0);
      gaps rest
    | _ -> ()
  in
  gaps times

let arrival_deterministic () =
  let a = Sched.Arrival.sustained ~seed:5 ~jobs:10 in
  let b = Sched.Arrival.sustained ~seed:5 ~jobs:10 in
  checkb "same sets" true
    (List.for_all2
       (fun (x : Sched.Job.t) (y : Sched.Job.t) ->
         x.Sched.Job.spec.Workload.Spec.name = y.Sched.Job.spec.Workload.Spec.name
         && x.Sched.Job.threads = y.Sched.Job.threads)
       a b)

let policy_machines () =
  List.iter
    (fun p ->
      let ms = Sched.Policy.machines p in
      checki "two machines" 2 (List.length ms))
    Sched.Policy.all;
  let het = Sched.Policy.machines Sched.Policy.Dynamic_balanced in
  checkb "heterogeneous pair" true
    (List.exists (fun m -> m.Machine.Server.arch = Isa.Arch.Arm64) het);
  let pair = Sched.Policy.machines Sched.Policy.Static_x86_pair in
  checkb "homogeneous pair" true
    (List.for_all (fun m -> m.Machine.Server.arch = Isa.Arch.X86_64) pair)

let policy_finfet_projection_applied () =
  let het = Sched.Policy.machines Sched.Policy.Dynamic_balanced in
  let arm = List.find (fun m -> m.Machine.Server.arch = Isa.Arch.Arm64) het in
  checkb "projected power" true
    (arm.Machine.Server.power.Machine.Power.cpu_max_w
    < Machine.Server.xgene1.Machine.Server.power.Machine.Power.cpu_max_w /. 5.0)

let policy_results_are_fresh () =
  (* Regression: [machines] shared one projected-X-Gene record and
     [share] could have aliased one array across calls; a caller mutating
     either must not poison later calls. *)
  let p = Sched.Policy.Dynamic_balanced in
  let a = Sched.Policy.machines p and b = Sched.Policy.machines p in
  checkb "machines equal by value" true
    (List.for_all2
       (fun (x : Machine.Server.t) (y : Machine.Server.t) ->
         x.Machine.Server.name = y.Machine.Server.name
         && x.Machine.Server.arch = y.Machine.Server.arch
         && x.Machine.Server.power = y.Machine.Server.power)
       a b);
  (* The catalog Xeon is an immutable library constant and may be
     shared; the FinFET-projected X-Gene is computed and must be fresh
     (it used to be built once at module init and shared forever). *)
  let arm ms =
    List.find (fun m -> m.Machine.Server.arch = Isa.Arch.Arm64) ms
  in
  checkb "projected record fresh per call" true (arm a != arm b);
  let s = Sched.Policy.share p in
  s.(0) <- 42.0;
  checkb "mutating a returned share does not leak" true
    ((Sched.Policy.share p).(0) <> 42.0)

let validate_messages () =
  let module V = Sched.Validate in
  let err = function Error e -> e | Ok _ -> Alcotest.fail "expected Error" in
  Alcotest.check Alcotest.string "at_least names flag and value"
    "--islands must be at least 1 (got 0)"
    (err (V.at_least ~what:"--islands" ~min:1 0));
  Alcotest.check Alcotest.string "positive_float rejects zero"
    "--epoch must be a positive number (got 0)"
    (err (V.positive_float ~what:"--epoch" 0.0));
  Alcotest.check Alcotest.string "positive_float rejects nan"
    "--rate must be a positive number (got nan)"
    (err (V.positive_float ~what:"--rate" Float.nan));
  Alcotest.check Alcotest.string "probability bounds"
    "--fail-rate must be a probability in [0, 1] (got 1.5)"
    (err (V.probability ~what:"--fail-rate" 1.5));
  checkb "islands: None passes" true (V.islands None = Ok None);
  checkb "islands: 1 passes" true (V.islands (Some 1) = Ok (Some 1));
  Alcotest.check Alcotest.string "islands: 0 rejected"
    "--islands must be at least 1 (got 0)"
    (err (V.islands (Some 0)))

let validate_crash_specs () =
  let module V = Sched.Validate in
  let err = function Error e -> e | Ok _ -> Alcotest.fail "expected Error" in
  checkb "well-formed spec parses" true
    (V.crash_spec "3@10.5" = Ok { Faults.Plan.node = 3; at = 10.5 });
  Alcotest.check Alcotest.string "names the bad node token"
    "bad crash spec \"twelve@3.0\": \"twelve\" is not a node id"
    (err (V.crash_spec "twelve@3.0"));
  Alcotest.check Alcotest.string "names the bad time token"
    "bad crash spec \"3@soon\": \"soon\" is not a time"
    (err (V.crash_spec "3@soon"));
  Alcotest.check Alcotest.string "negative node"
    "bad crash spec \"-1@2.0\": node -1 is negative"
    (err (V.crash_spec "-1@2.0"));
  Alcotest.check Alcotest.string "malformed shape"
    "bad crash spec \"3\" (want NODE@TIME, e.g. 3@10.5)"
    (err (V.crash_spec "3"));
  Alcotest.check Alcotest.string "out-of-range node at run setup"
    "--crash 99@10: node 99 is out of range (nodes are 0..15)"
    (err (V.crashes_in_range ~nodes:16 [ { Faults.Plan.node = 99; at = 10.0 } ]));
  checkb "in-range crashes pass" true
    (V.crashes_in_range ~nodes:16 [ { Faults.Plan.node = 15; at = 10.0 } ]
    = Ok ())

let validate_topology () =
  let module V = Sched.Validate in
  let err = function Error e -> e | Ok _ -> Alcotest.fail "expected Error" in
  Alcotest.check Alcotest.string "divisibility check"
    "--nodes 10 is not divisible by --racks 3"
    (err (V.topology ~nodes:10 ~racks:3 ~mix_name:"alternate"));
  Alcotest.check Alcotest.string "unknown mix"
    "unknown --mix bogus (want alternate, isa-racks, x86-only or arm-only)"
    (err (V.topology ~nodes:8 ~racks:2 ~mix_name:"bogus"));
  Alcotest.check Alcotest.string "more racks than nodes"
    "--racks 9 exceeds --nodes 8"
    (err (V.topology ~nodes:8 ~racks:9 ~mix_name:"alternate"));
  (match V.topology ~nodes:8 ~racks:1 ~mix_name:"alternate" with
  | Ok t ->
    checkb "racks=1 is the flat paper interconnect" true
      (t.Machine.Topology.local.Machine.Topology.latency_s
      = Machine.Interconnect.ethernet_10g.Machine.Interconnect.latency_s)
  | Error e -> Alcotest.fail e);
  match V.topology ~nodes:8 ~racks:2 ~mix_name:"isa-racks" with
  | Ok t -> checki "racked topology built" 2 (Machine.Topology.racks t)
  | Error e -> Alcotest.fail e

let small_jobs seed n = Sched.Arrival.sustained ~seed ~jobs:n

let scheduler_completes_all_jobs () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 11 8) in
      checki (Sched.Policy.name r.Sched.Scheduler.policy ^ " completes") 8
        r.Sched.Scheduler.completed;
      checki "nothing rejected" 0 r.Sched.Scheduler.rejected;
      checkb "positive makespan" true (r.Sched.Scheduler.makespan > 0.0);
      checkb "positive energy" true (r.Sched.Scheduler.total_energy > 0.0))
    Sched.Policy.all

let infeasible_jobs_counted_as_rejected () =
  (* A job wider than every machine can never be placed; it must be
     rejected at submission and accounted for, never silently dropped. *)
  let feasible = small_jobs 19 6 in
  let wide =
    Sched.Job.make ~jid:999
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:1024 ~arrival:0.0
  in
  let submitted = wide :: feasible in
  let r = Sched.Scheduler.run Sched.Policy.Dynamic_balanced submitted in
  checki "rejected counted" 1 r.Sched.Scheduler.rejected;
  checki "feasible jobs complete" (List.length feasible)
    r.Sched.Scheduler.completed;
  checki "completed + rejected = submitted" (List.length submitted)
    (r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected)

let static_policies_never_migrate () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 12 8) in
      checki "no migrations" 0 r.Sched.Scheduler.migrations)
    [ Sched.Policy.Static_x86_pair; Sched.Policy.Static_het_balanced;
      Sched.Policy.Static_het_unbalanced ]

let dynamic_policies_migrate () =
  (* Whether a particular set triggers a rebalance depends on the draw;
     across a few seeds at least one must migrate. *)
  let total =
    List.fold_left
      (fun acc seed ->
        let r =
          Sched.Scheduler.run Sched.Policy.Dynamic_balanced (small_jobs seed 16)
        in
        acc + r.Sched.Scheduler.migrations)
      0 [ 13; 14; 15 ]
  in
  checkb "some migrations happen" true (total > 0)

let unbalanced_keeps_x86_busier () =
  let r =
    Sched.Scheduler.run Sched.Policy.Static_het_unbalanced (small_jobs 14 16)
  in
  (* The x86 (node 0) must do most of the energy-visible work. *)
  checkb "x86 consumed more" true
    (r.Sched.Scheduler.energy.(0) > r.Sched.Scheduler.energy.(1))

let energy_within_physical_envelope () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 15 8) in
      let machines = Sched.Policy.machines policy in
      let max_w =
        List.fold_left
          (fun acc m ->
            acc +. Machine.Power.system_power m.Machine.Server.power ~utilization:1.0)
          0.0 machines
      in
      checkb "below max power x time" true
        (r.Sched.Scheduler.total_energy <= max_w *. r.Sched.Scheduler.makespan *. 1.001);
      checkb "above zero" true (r.Sched.Scheduler.total_energy > 0.0))
    Sched.Policy.all

let edp_consistent () =
  let r = Sched.Scheduler.run Sched.Policy.Static_x86_pair (small_jobs 16 6) in
  checkb "edp = energy x makespan" true
    (Float.abs
       (r.Sched.Scheduler.edp
       -. (r.Sched.Scheduler.total_energy *. r.Sched.Scheduler.makespan))
    < 1e-6)

let deterministic_runs () =
  let a = Sched.Scheduler.run Sched.Policy.Dynamic_unbalanced (small_jobs 17 10) in
  let b = Sched.Scheduler.run Sched.Policy.Dynamic_unbalanced (small_jobs 17 10) in
  checkb "same makespan" true (a.Sched.Scheduler.makespan = b.Sched.Scheduler.makespan);
  checkb "same energy" true
    (a.Sched.Scheduler.total_energy = b.Sched.Scheduler.total_energy)

let periodic_dynamic_saves_energy () =
  (* The headline claim of Figure 13, on a reduced set for test speed. *)
  let jobs = Sched.Arrival.periodic ~seed:18 ~waves:3 ~max_per_wave:8 in
  let st = Sched.Scheduler.run Sched.Policy.Static_x86_pair jobs in
  let dy = Sched.Scheduler.run Sched.Policy.Dynamic_balanced jobs in
  checki "all complete (static)" (List.length jobs) st.Sched.Scheduler.completed;
  checki "all complete (dynamic)" (List.length jobs) dy.Sched.Scheduler.completed;
  checkb "dynamic uses less energy" true
    (dy.Sched.Scheduler.total_energy < st.Sched.Scheduler.total_energy)

let sjf_admission_reorders () =
  let jobs = Sched.Arrival.sustained ~seed:21 ~jobs:20 in
  let fcfs =
    Sched.Scheduler.run ~admission:Sched.Scheduler.Fcfs
      Sched.Policy.Static_x86_pair jobs
  in
  let sjf =
    Sched.Scheduler.run ~admission:Sched.Scheduler.Sjf
      Sched.Policy.Static_x86_pair jobs
  in
  checki "fcfs completes" 20 fcfs.Sched.Scheduler.completed;
  checki "sjf completes" 20 sjf.Sched.Scheduler.completed;
  checkb "orderings differ observably" true
    (fcfs.Sched.Scheduler.makespan <> sjf.Sched.Scheduler.makespan
    || fcfs.Sched.Scheduler.total_energy <> sjf.Sched.Scheduler.total_energy)

(* Properties over random workloads: conservation + physical bounds. *)
let scheduler_random_props =
  QCheck.Test.make ~name:"scheduler invariants over random workloads" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let jobs = Sched.Arrival.sustained ~seed ~jobs:6 in
      List.for_all
        (fun policy ->
          let r = Sched.Scheduler.run policy jobs in
          let machines = Sched.Policy.machines policy in
          let max_w =
            List.fold_left
              (fun acc m ->
                acc
                +. Machine.Power.system_power m.Machine.Server.power
                     ~utilization:1.0)
              0.0 machines
          in
          (* every job completes exactly once; nothing vanishes *)
          r.Sched.Scheduler.completed = List.length jobs
          && r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected
             = List.length jobs
          (* energy within the physical envelope *)
          && r.Sched.Scheduler.total_energy > 0.0
          && r.Sched.Scheduler.total_energy
             <= (max_w *. r.Sched.Scheduler.makespan *. 1.001)
          (* EDP consistency *)
          && Float.abs
               (r.Sched.Scheduler.edp
               -. (r.Sched.Scheduler.total_energy *. r.Sched.Scheduler.makespan))
             < 1.0
          (* static policies never migrate *)
          && (Sched.Policy.is_dynamic policy || r.Sched.Scheduler.migrations = 0))
        Sched.Policy.all)

let suite =
  [
    ("sustained arrivals shape", `Quick, arrival_sustained_shape);
    ("periodic arrivals shape", `Quick, arrival_periodic_shape);
    ("arrivals deterministic", `Quick, arrival_deterministic);
    ("policy machine pairs", `Quick, policy_machines);
    ("policy applies FinFET projection", `Quick, policy_finfet_projection_applied);
    ("policy results are fresh per call", `Quick, policy_results_are_fresh);
    ("validate: flag messages", `Quick, validate_messages);
    ("validate: crash specs name the token", `Quick, validate_crash_specs);
    ("validate: topology knobs", `Quick, validate_topology);
    ("scheduler completes all jobs", `Slow, scheduler_completes_all_jobs);
    ("infeasible jobs counted as rejected", `Slow,
     infeasible_jobs_counted_as_rejected);
    ("static policies never migrate", `Slow, static_policies_never_migrate);
    ("dynamic policies migrate", `Slow, dynamic_policies_migrate);
    ("unbalanced keeps x86 busier", `Slow, unbalanced_keeps_x86_busier);
    ("energy within physical envelope", `Slow, energy_within_physical_envelope);
    ("EDP consistent", `Quick, edp_consistent);
    ("scheduler deterministic", `Slow, deterministic_runs);
    ("periodic: dynamic saves energy", `Slow, periodic_dynamic_saves_energy);
    ("SJF admission reorders the queue", `Slow, sjf_admission_reorders);
    QCheck_alcotest.to_alcotest scheduler_random_props;
  ]
