let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg

let arrival_sustained_shape () =
  let jobs = Sched.Arrival.sustained ~seed:3 ~jobs:40 in
  checki "40 jobs" 40 (List.length jobs);
  List.iter
    (fun (j : Sched.Job.t) ->
      checkb "arrive at t=0" true (j.Sched.Job.arrival = 0.0);
      checkb "1-4 threads" true (j.Sched.Job.threads >= 1 && j.Sched.Job.threads <= 4))
    jobs

let arrival_periodic_shape () =
  let jobs = Sched.Arrival.periodic ~seed:4 ~waves:5 ~max_per_wave:14 in
  checkb "jobs exist" true (List.length jobs > 0);
  checkb "at most 70" true (List.length jobs <= 70);
  let times = List.sort_uniq compare (List.map (fun j -> j.Sched.Job.arrival) jobs) in
  checki "five distinct wave times" 5 (List.length times);
  (* Wave spacing within 60..240 s. *)
  let rec gaps = function
    | a :: (b :: _ as rest) ->
      checkb "spacing in range" true (b -. a >= 60.0 && b -. a <= 240.0);
      gaps rest
    | _ -> ()
  in
  gaps times

let arrival_deterministic () =
  let a = Sched.Arrival.sustained ~seed:5 ~jobs:10 in
  let b = Sched.Arrival.sustained ~seed:5 ~jobs:10 in
  checkb "same sets" true
    (List.for_all2
       (fun (x : Sched.Job.t) (y : Sched.Job.t) ->
         x.Sched.Job.spec.Workload.Spec.name = y.Sched.Job.spec.Workload.Spec.name
         && x.Sched.Job.threads = y.Sched.Job.threads)
       a b)

let policy_machines () =
  List.iter
    (fun p ->
      let ms = Sched.Policy.machines p in
      checki "two machines" 2 (List.length ms))
    Sched.Policy.all;
  let het = Sched.Policy.machines Sched.Policy.Dynamic_balanced in
  checkb "heterogeneous pair" true
    (List.exists (fun m -> m.Machine.Server.arch = Isa.Arch.Arm64) het);
  let pair = Sched.Policy.machines Sched.Policy.Static_x86_pair in
  checkb "homogeneous pair" true
    (List.for_all (fun m -> m.Machine.Server.arch = Isa.Arch.X86_64) pair)

let policy_finfet_projection_applied () =
  let het = Sched.Policy.machines Sched.Policy.Dynamic_balanced in
  let arm = List.find (fun m -> m.Machine.Server.arch = Isa.Arch.Arm64) het in
  checkb "projected power" true
    (arm.Machine.Server.power.Machine.Power.cpu_max_w
    < Machine.Server.xgene1.Machine.Server.power.Machine.Power.cpu_max_w /. 5.0)

let small_jobs seed n = Sched.Arrival.sustained ~seed ~jobs:n

let scheduler_completes_all_jobs () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 11 8) in
      checki (Sched.Policy.name r.Sched.Scheduler.policy ^ " completes") 8
        r.Sched.Scheduler.completed;
      checki "nothing rejected" 0 r.Sched.Scheduler.rejected;
      checkb "positive makespan" true (r.Sched.Scheduler.makespan > 0.0);
      checkb "positive energy" true (r.Sched.Scheduler.total_energy > 0.0))
    Sched.Policy.all

let infeasible_jobs_counted_as_rejected () =
  (* A job wider than every machine can never be placed; it must be
     rejected at submission and accounted for, never silently dropped. *)
  let feasible = small_jobs 19 6 in
  let wide =
    Sched.Job.make ~jid:999
      ~spec:(Workload.Spec.spec Workload.Spec.EP Workload.Spec.A)
      ~threads:1024 ~arrival:0.0
  in
  let submitted = wide :: feasible in
  let r = Sched.Scheduler.run Sched.Policy.Dynamic_balanced submitted in
  checki "rejected counted" 1 r.Sched.Scheduler.rejected;
  checki "feasible jobs complete" (List.length feasible)
    r.Sched.Scheduler.completed;
  checki "completed + rejected = submitted" (List.length submitted)
    (r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected)

let static_policies_never_migrate () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 12 8) in
      checki "no migrations" 0 r.Sched.Scheduler.migrations)
    [ Sched.Policy.Static_x86_pair; Sched.Policy.Static_het_balanced;
      Sched.Policy.Static_het_unbalanced ]

let dynamic_policies_migrate () =
  (* Whether a particular set triggers a rebalance depends on the draw;
     across a few seeds at least one must migrate. *)
  let total =
    List.fold_left
      (fun acc seed ->
        let r =
          Sched.Scheduler.run Sched.Policy.Dynamic_balanced (small_jobs seed 16)
        in
        acc + r.Sched.Scheduler.migrations)
      0 [ 13; 14; 15 ]
  in
  checkb "some migrations happen" true (total > 0)

let unbalanced_keeps_x86_busier () =
  let r =
    Sched.Scheduler.run Sched.Policy.Static_het_unbalanced (small_jobs 14 16)
  in
  (* The x86 (node 0) must do most of the energy-visible work. *)
  checkb "x86 consumed more" true
    (r.Sched.Scheduler.energy.(0) > r.Sched.Scheduler.energy.(1))

let energy_within_physical_envelope () =
  List.iter
    (fun policy ->
      let r = Sched.Scheduler.run policy (small_jobs 15 8) in
      let machines = Sched.Policy.machines policy in
      let max_w =
        List.fold_left
          (fun acc m ->
            acc +. Machine.Power.system_power m.Machine.Server.power ~utilization:1.0)
          0.0 machines
      in
      checkb "below max power x time" true
        (r.Sched.Scheduler.total_energy <= max_w *. r.Sched.Scheduler.makespan *. 1.001);
      checkb "above zero" true (r.Sched.Scheduler.total_energy > 0.0))
    Sched.Policy.all

let edp_consistent () =
  let r = Sched.Scheduler.run Sched.Policy.Static_x86_pair (small_jobs 16 6) in
  checkb "edp = energy x makespan" true
    (Float.abs
       (r.Sched.Scheduler.edp
       -. (r.Sched.Scheduler.total_energy *. r.Sched.Scheduler.makespan))
    < 1e-6)

let deterministic_runs () =
  let a = Sched.Scheduler.run Sched.Policy.Dynamic_unbalanced (small_jobs 17 10) in
  let b = Sched.Scheduler.run Sched.Policy.Dynamic_unbalanced (small_jobs 17 10) in
  checkb "same makespan" true (a.Sched.Scheduler.makespan = b.Sched.Scheduler.makespan);
  checkb "same energy" true
    (a.Sched.Scheduler.total_energy = b.Sched.Scheduler.total_energy)

let periodic_dynamic_saves_energy () =
  (* The headline claim of Figure 13, on a reduced set for test speed. *)
  let jobs = Sched.Arrival.periodic ~seed:18 ~waves:3 ~max_per_wave:8 in
  let st = Sched.Scheduler.run Sched.Policy.Static_x86_pair jobs in
  let dy = Sched.Scheduler.run Sched.Policy.Dynamic_balanced jobs in
  checki "all complete (static)" (List.length jobs) st.Sched.Scheduler.completed;
  checki "all complete (dynamic)" (List.length jobs) dy.Sched.Scheduler.completed;
  checkb "dynamic uses less energy" true
    (dy.Sched.Scheduler.total_energy < st.Sched.Scheduler.total_energy)

let sjf_admission_reorders () =
  let jobs = Sched.Arrival.sustained ~seed:21 ~jobs:20 in
  let fcfs =
    Sched.Scheduler.run ~admission:Sched.Scheduler.Fcfs
      Sched.Policy.Static_x86_pair jobs
  in
  let sjf =
    Sched.Scheduler.run ~admission:Sched.Scheduler.Sjf
      Sched.Policy.Static_x86_pair jobs
  in
  checki "fcfs completes" 20 fcfs.Sched.Scheduler.completed;
  checki "sjf completes" 20 sjf.Sched.Scheduler.completed;
  checkb "orderings differ observably" true
    (fcfs.Sched.Scheduler.makespan <> sjf.Sched.Scheduler.makespan
    || fcfs.Sched.Scheduler.total_energy <> sjf.Sched.Scheduler.total_energy)

(* Properties over random workloads: conservation + physical bounds. *)
let scheduler_random_props =
  QCheck.Test.make ~name:"scheduler invariants over random workloads" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let jobs = Sched.Arrival.sustained ~seed ~jobs:6 in
      List.for_all
        (fun policy ->
          let r = Sched.Scheduler.run policy jobs in
          let machines = Sched.Policy.machines policy in
          let max_w =
            List.fold_left
              (fun acc m ->
                acc
                +. Machine.Power.system_power m.Machine.Server.power
                     ~utilization:1.0)
              0.0 machines
          in
          (* every job completes exactly once; nothing vanishes *)
          r.Sched.Scheduler.completed = List.length jobs
          && r.Sched.Scheduler.completed + r.Sched.Scheduler.rejected
             = List.length jobs
          (* energy within the physical envelope *)
          && r.Sched.Scheduler.total_energy > 0.0
          && r.Sched.Scheduler.total_energy
             <= (max_w *. r.Sched.Scheduler.makespan *. 1.001)
          (* EDP consistency *)
          && Float.abs
               (r.Sched.Scheduler.edp
               -. (r.Sched.Scheduler.total_energy *. r.Sched.Scheduler.makespan))
             < 1.0
          (* static policies never migrate *)
          && (Sched.Policy.is_dynamic policy || r.Sched.Scheduler.migrations = 0))
        Sched.Policy.all)

let suite =
  [
    ("sustained arrivals shape", `Quick, arrival_sustained_shape);
    ("periodic arrivals shape", `Quick, arrival_periodic_shape);
    ("arrivals deterministic", `Quick, arrival_deterministic);
    ("policy machine pairs", `Quick, policy_machines);
    ("policy applies FinFET projection", `Quick, policy_finfet_projection_applied);
    ("scheduler completes all jobs", `Slow, scheduler_completes_all_jobs);
    ("infeasible jobs counted as rejected", `Slow,
     infeasible_jobs_counted_as_rejected);
    ("static policies never migrate", `Slow, static_policies_never_migrate);
    ("dynamic policies migrate", `Slow, dynamic_policies_migrate);
    ("unbalanced keeps x86 busier", `Slow, unbalanced_keeps_x86_busier);
    ("energy within physical envelope", `Slow, energy_within_physical_envelope);
    ("EDP consistent", `Quick, edp_consistent);
    ("scheduler deterministic", `Slow, deterministic_runs);
    ("periodic: dynamic saves energy", `Slow, periodic_dynamic_saves_energy);
    ("SJF admission reorders the queue", `Slow, sjf_admission_reorders);
    QCheck_alcotest.to_alcotest scheduler_random_props;
  ]
