(* The hetmig audit subsystem: the schedule verifier, the island race
   detector, and the determinism certifier — plus the seeded-corruption
   corpus proving every rule can actually fail, and the clean-corpus
   runs proving the committed scenarios pass.

   The seeded captures are built by hand from one small well-formed
   execution (two islands, two windows, one cross-island post) and then
   corrupted one field at a time. Each corruption must trip exactly the
   rule whose invariant it breaks and nothing else — that is the
   rule-locality contract the passes are written to (each rule reads
   only the fields its clause is about). *)

let checkb msg = Alcotest.check Alcotest.bool msg
let checki msg = Alcotest.check Alcotest.int msg
let checks msg = Alcotest.check Alcotest.string msg

module D = Analysis.Diagnostic
module I = Sim.Islands
module Det = Analysis.Determinism_check

let count_rule rule ds =
  List.length (List.filter (fun (d : D.t) -> d.D.rule = rule) ds)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* [only rule ds] — the corruption tripped its rule exactly once and
   produced no other diagnostic at all. *)
let only rule ds =
  checki (rule ^ " fires once") 1 (count_rule rule ds);
  checki (rule ^ " is the only finding") 1 (List.length ds)

let verify cap =
  Analysis.Islands_check.check ~label:"seeded" cap
  @ Analysis.Island_race.check ~label:"seeded" cap

(* --- the well-formed baseline capture ----------------------------------- *)

let touch ~owner ~resource ~write =
  { I.t_owner = owner; t_resource = resource; t_write = write }

let exec ~isl ~time ~seq ~src ~clock ~window ~before ~after ~touches =
  {
    I.x_isl = isl;
    x_time = time;
    x_seq = seq;
    x_src = src;
    x_clock_before = clock;
    x_window = window;
    x_prng_before = before;
    x_prng_after = after;
    x_touches = touches;
  }

(* Two islands, lookahead 1.0. Window 0 spans [0, 1): island 0 runs
   (0.0, 0, 0) and posts to island 1 with delay 1.5; island 1 runs
   (0.5, 1, 1). Window 1 spans [1.5, 2.5): island 1 runs the delivered
   (1.5, 2, 0); island 0 runs (1.8, 3, 0). Each island touches only the
   resource it owns (island i owns resource i). *)
let exec_a =
  exec ~isl:0 ~time:0.0 ~seq:0 ~src:0 ~clock:0.0 ~window:0 ~before:10L
    ~after:11L
    ~touches:[ touch ~owner:0 ~resource:0 ~write:true ]

let exec_b =
  exec ~isl:1 ~time:0.5 ~seq:1 ~src:1 ~clock:0.0 ~window:0 ~before:20L
    ~after:20L
    ~touches:[ touch ~owner:1 ~resource:1 ~write:true ]

let exec_c =
  exec ~isl:1 ~time:1.5 ~seq:2 ~src:0 ~clock:0.5 ~window:1 ~before:20L
    ~after:22L
    ~touches:[ touch ~owner:1 ~resource:1 ~write:true ]

let exec_d =
  exec ~isl:0 ~time:1.8 ~seq:3 ~src:0 ~clock:0.0 ~window:1 ~before:11L
    ~after:11L
    ~touches:[ touch ~owner:0 ~resource:0 ~write:false ]

let base_post =
  {
    I.p_src = 0;
    p_dst = 1;
    p_send_time = 0.0;
    p_after = 1.5;
    p_deliver_time = 1.5;
    p_seq = 2;
    p_window = 0;
  }

let barrier ~window ~from ~until ~prng =
  { I.b_window = window; b_from = from; b_until = until; b_prng = prng }

let base_cap =
  {
    I.c_islands = 2;
    c_lookahead = 1.0;
    c_edge = [||];
    c_prng0 = [| 10L; 20L |];
    c_execs = [| [ exec_a; exec_d ]; [ exec_b; exec_c ] |];
    c_posts = [ base_post ];
    c_barriers =
      [
        barrier ~window:0 ~from:0.0 ~until:1.0 ~prng:[| 11L; 20L |];
        barrier ~window:1 ~from:1.5 ~until:2.5 ~prng:[| 11L; 22L |];
      ];
    c_calendar_violations = 0;
  }

let baseline_is_clean () =
  checki "hand-built capture certifies clean" 0 (List.length (verify base_cap))

(* --- seeded corruptions: one field, one rule ---------------------------- *)

let seeded_post_lookahead () =
  (* A post whose delay undercuts the lookahead: the one contract that
     makes window execution safe at all. *)
  let cap = { base_cap with I.c_posts = [ { base_post with I.p_after = 0.5 } ] } in
  only "island-post-lookahead" (verify cap)

let seeded_exec_before_clock () =
  (* The delivered event now claims to run with island 1's clock already
     past it — time travel within an island. *)
  let cap =
    {
      base_cap with
      I.c_execs = [| [ exec_a; exec_d ]; [ exec_b; { exec_c with I.x_clock_before = 2.0 } ] |];
    }
  in
  only "island-exec-before-clock" (verify cap)

let seeded_exec_outside_window () =
  (* Island 0's window-1 event escapes the window's [1.5, 2.5) bounds.
     The key (3.0, 3, 0) still sorts after its predecessor, so the
     order rules stay silent — this is purely a window violation. *)
  let cap =
    {
      base_cap with
      I.c_execs = [| [ exec_a; { exec_d with I.x_time = 3.0 } ]; [ exec_b; exec_c ] |];
    }
  in
  only "island-exec-outside-window" (verify cap)

let seeded_order () =
  (* Island 1 executes its two events in reversed key order. The PRNG
     fingerprints are re-threaded to match the new order so the stream
     stays locally accounted — order is the only broken invariant. *)
  let b' = { exec_b with I.x_prng_before = 22L; x_prng_after = 22L } in
  let c' = { exec_c with I.x_prng_before = 20L; x_prng_after = 22L } in
  let cap =
    {
      base_cap with
      I.c_execs = [| [ exec_a; exec_d ]; [ c'; b' ] |];
      c_barriers =
        [
          barrier ~window:0 ~from:0.0 ~until:1.0 ~prng:[| 11L; 20L |];
          barrier ~window:1 ~from:1.5 ~until:2.5 ~prng:[| 11L; 22L |];
        ];
    }
  in
  only "island-order" (verify cap)

let seeded_order_ambiguous () =
  (* Island 0's second event is rewritten to island 1's window-0 key:
     a duplicate (time, seq, src) makes the merge order ambiguous.
     Locally both islands are still strictly increasing. *)
  let dup =
    { exec_d with I.x_time = 0.5; x_seq = 1; x_src = 1; x_window = 0 }
  in
  let cap = { base_cap with I.c_execs = [| [ exec_a; dup ]; [ exec_b; exec_c ] |] } in
  only "island-order-ambiguous" (verify cap)

let seeded_window_regress () =
  (* Window 1 starts before window 0 ended: the global clock ran
     backwards. Its [b_until] still covers both events, so the
     per-event window rule stays silent. *)
  let cap =
    {
      base_cap with
      I.c_barriers =
        [
          barrier ~window:0 ~from:0.0 ~until:1.0 ~prng:[| 11L; 20L |];
          barrier ~window:1 ~from:0.5 ~until:2.5 ~prng:[| 11L; 22L |];
        ];
      (* keep execs inside the widened window-1 bounds *)
      c_execs = base_cap.I.c_execs;
    }
  in
  only "island-window-regress" (verify cap)

let seeded_prng_nonlocal () =
  (* Island 1's delivered event starts from a fingerprint its own chain
     never produced: a draw happened on its stream from outside its
     events. The chain resyncs after the gap, so one corruption is one
     diagnostic. *)
  let cap =
    {
      base_cap with
      I.c_execs = [| [ exec_a; exec_d ]; [ exec_b; { exec_c with I.x_prng_before = 21L } ] |];
    }
  in
  only "island-prng-nonlocal" (verify cap)

let seeded_calendar_order () =
  let cap = { base_cap with I.c_calendar_violations = 3 } in
  only "island-calendar-order" (verify cap)

let seeded_empty_capture () =
  let cap =
    {
      base_cap with
      I.c_execs = [| []; [] |];
      c_posts = [];
      c_barriers = [];
    }
  in
  let ds = verify cap in
  checki "island-empty-capture fires once" 1 (count_rule "island-empty-capture" ds);
  checki "and it is the only finding" 1 (List.length ds);
  checki "as info, not error" 0 (D.errors ds)

let seeded_island_race () =
  (* Island 0's window-1 event writes island 1's resource while island 1
     touches it in the same window: no barrier between them, so no
     happens-before edge — the ownership contract breach. *)
  let d' =
    { exec_d with I.x_touches = [ touch ~owner:1 ~resource:1 ~write:true ] }
  in
  let cap = { base_cap with I.c_execs = [| [ exec_a; d' ]; [ exec_b; exec_c ] |] } in
  let ds = verify cap in
  only "island-race" ds;
  checkb "verdict names the owner" true
    (List.exists
       (fun (d : D.t) ->
         d.D.rule = "island-race" && contains d.D.message "owner island 1")
       ds)

(* The cross-window version of the same touch pattern must NOT race:
   the window barrier is the happens-before edge. *)
let cross_window_touch_is_ordered () =
  (* Island 0 touches island 1's resource in window 0; island 1 touches
     it in window 1. The barrier between the windows orders them. *)
  let a' =
    { exec_a with I.x_touches = [ touch ~owner:1 ~resource:1 ~write:true ] }
  in
  let b' = { exec_b with I.x_touches = [] } in
  let cap = { base_cap with I.c_execs = [| [ a'; exec_d ]; [ b'; exec_c ] |] } in
  checki "barrier orders cross-window touches" 0
    (count_rule "island-race" (verify cap))

(* --- Race.Barrier semantics --------------------------------------------- *)

let acc u page write = Analysis.Race.Access { unit_ = u; page; write }

let race_barrier_orders_all () =
  let detect = Analysis.Race.detect in
  checki "barrier orders the pair" 0
    (List.length
       (detect ~units:2 [ acc 0 7 true; Analysis.Race.Barrier; acc 1 7 true ]));
  checki "without it the pair races" 1
    (List.length (detect ~units:2 [ acc 0 7 true; acc 1 7 true ]));
  (* All-to-all: the barrier orders every unit against every other,
     in both directions at once. *)
  checki "barrier is all-to-all" 0
    (List.length
       (detect ~units:3
          [
            acc 0 7 true;
            acc 1 8 true;
            acc 2 9 true;
            Analysis.Race.Barrier;
            acc 2 7 true;
            acc 0 8 true;
            acc 1 9 true;
          ]));
  (* Same-side accesses are still unordered: the barrier creates no
     edge between two units' touches within one window. *)
  checki "same-side accesses still race" 1
    (List.length
       (detect ~units:2
          [ Analysis.Race.Barrier; acc 0 7 true; acc 1 7 true ]))

(* --- determinism certifier ---------------------------------------------- *)

let obs ?capture label render =
  { Det.r_label = label; r_render = render; r_capture = capture }

let certify_identical_is_silent () =
  let a = obs ~capture:base_cap "domains=1" "report\nbody\n" in
  let b = obs ~capture:base_cap "domains=4" "report\nbody\n" in
  checki "identical runs certify clean" 0
    (List.length (Det.certify ~label:"t" ~reference:a ~candidate:b))

let certify_log_divergence () =
  (* Same render, one executed key differs: the capture layer catches
     what the report diff cannot see. *)
  let forked =
    {
      base_cap with
      I.c_execs = [| [ exec_a; exec_d ]; [ exec_b; { exec_c with I.x_seq = 9 } ] |];
    }
  in
  let a = obs ~capture:base_cap "domains=1" "same\n" in
  let b = obs ~capture:forked "domains=4" "same\n" in
  let ds = Det.certify ~label:"t" ~reference:a ~candidate:b in
  checki "log divergence fires once" 1 (count_rule "det-log-divergence" ds);
  checki "render rule stays silent" 0 (count_rule "det-render-divergence" ds);
  checkb "divergence names the island" true
    (List.exists (fun (d : D.t) -> d.D.loc.D.func = Some "island-1") ds)

let certify_render_divergence () =
  let a = obs "domains=1" "line1\nline2\n" in
  let b = obs "domains=4" "line1\nline2 CHANGED\n" in
  let ds = Det.certify ~label:"t" ~reference:a ~candidate:b in
  checki "render divergence fires once" 1 (count_rule "det-render-divergence" ds);
  checkb "diagnostic pins the line" true
    (List.exists (fun (d : D.t) -> d.D.loc.D.site = Some "line 2") ds)

let seed_sensitivity () =
  let base = obs "base" "r\n" in
  checki "identical renders under a perturbed seed warn" 1
    (count_rule "det-seed-insensitive"
       (Det.check_seed_sensitivity ~label:"t" ~base
          ~perturbed:(obs "seed+1" "r\n")));
  checki "differing renders are what we want" 0
    (List.length
       (Det.check_seed_sensitivity ~label:"t" ~base
          ~perturbed:(obs "seed+1" "r'\n")))

(* --- clean corpus: real captured runs certify clean --------------------- *)

let small_fleet = Sched.Fleet.default ~nodes:8 ~jobs:60 ~seed:42

let small_cluster =
  Sched.Cluster.default
    ~topology:(Machine.Topology.make ~racks:2 ~nodes_per_rack:4 ())
    ~jobs:60 ~seed:42

let small_serve ?(crashes = []) () =
  {
    (Sched.Service.default ~nodes:4 ~seed:42
       ~source:
         (Sched.Arrival.bursty_source ~seed:42 ~services:2 ~duration_s:10.0 ()))
    with
    Sched.Service.crashes;
  }

let fleet_capture_is_clean () =
  let _, cap = Sched.Fleet.run_audited ~domains:2 small_fleet in
  let ds = verify cap in
  checki "fleet capture certifies clean" 0 (List.length ds);
  checkb "and is not vacuously empty" true
    (Array.exists (fun l -> l <> []) cap.I.c_execs);
  checkb "with cross-island posts recorded" true (cap.I.c_posts <> [])

let cluster_capture_is_clean () =
  let _, cap = Sched.Cluster.run_audited ~domains:2 small_cluster in
  let ds = verify cap in
  checki "cluster capture certifies clean" 0 (List.length ds);
  checkb "and is not vacuously empty" true
    (Array.exists (fun l -> l <> []) cap.I.c_execs);
  checkb "with cross-island posts recorded" true (cap.I.c_posts <> []);
  checkb "under a per-edge lookahead matrix" true (cap.I.c_edge <> [||])

let serve_capture_is_clean () =
  let _, cap = Sched.Service.run_audited ~domains:2 (small_serve ()) in
  let ds = verify cap in
  checki "serve capture certifies clean" 0 (List.length ds);
  checkb "and is not vacuously empty" true
    (Array.exists (fun l -> l <> []) cap.I.c_execs)

let crashy_serve_capture_is_clean () =
  (* Fault injection exercises the drain/crash paths, whose ownership
     touches must still all be island-local. *)
  let cfg = small_serve ~crashes:[ { Faults.Plan.node = 1; at = 2.0 } ] () in
  let _, cap = Sched.Service.run_audited ~domains:2 cfg in
  checki "crashy serve capture certifies clean" 0 (List.length (verify cap))

let audited_run_matches_plain () =
  (* Capture is pure observation: the audited run's render must be
     byte-identical to the plain run's. *)
  let plain = Sched.Fleet.render small_fleet (Sched.Fleet.run ~domains:1 small_fleet) in
  let r, _ = Sched.Fleet.run_audited ~domains:1 small_fleet in
  checks "capture does not perturb the schedule" plain
    (Sched.Fleet.render small_fleet r)

(* --- the audit driver ---------------------------------------------------- *)

let audit_small_corpus_clean () =
  let ds =
    Analysis.Audit.run ~domains:2 ~jobs:1 ~fleet:small_fleet
      ~cluster:small_cluster ~serve:(small_serve ()) ()
  in
  checki "zero errors over fleet+cluster+serve+scheduler" 0 (D.errors ds);
  checki "zero warnings either" 0 (D.warnings ds)

let audit_json_stable_across_jobs () =
  let run jobs =
    Analysis.Audit.run ~domains:2 ~jobs ~fleet:small_fleet
      ~cluster:small_cluster ~serve:(small_serve ()) ()
  in
  checks "byte-identical report" (D.report_to_json (run 1))
    (D.report_to_json (run 4))

let audit_rule_filter () =
  let ds =
    Analysis.Audit.run ~rules:[ "island-race" ] ~scenarios:[ Analysis.Audit.Fleet ]
      ~domains:2 ~jobs:1 ~fleet:small_fleet ()
  in
  checki "clean corpus, filtered" 0 (List.length ds);
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "Audit: unknown rule no-such-rule") (fun () ->
      ignore (Analysis.Audit.run ~rules:[ "no-such-rule" ] ()));
  checkb "scenario names round-trip" true
    (List.for_all
       (fun s ->
         Analysis.Audit.scenario_of_name (Analysis.Audit.scenario_name s)
         = Some s)
       Analysis.Audit.all_scenarios);
  checkb "registry covers all three passes" true
    (Analysis.Audit.is_rule "island-post-lookahead"
    && Analysis.Audit.is_rule "island-race"
    && Analysis.Audit.is_rule "det-log-divergence")

let suite =
  [
    ("baseline capture is clean", `Quick, baseline_is_clean);
    ("seeded: post below lookahead", `Quick, seeded_post_lookahead);
    ("seeded: exec before clock", `Quick, seeded_exec_before_clock);
    ("seeded: exec outside window", `Quick, seeded_exec_outside_window);
    ("seeded: out-of-order execution", `Quick, seeded_order);
    ("seeded: ambiguous key tie", `Quick, seeded_order_ambiguous);
    ("seeded: window regression", `Quick, seeded_window_regress);
    ("seeded: non-local prng draw", `Quick, seeded_prng_nonlocal);
    ("seeded: calendar tripwire", `Quick, seeded_calendar_order);
    ("seeded: empty capture", `Quick, seeded_empty_capture);
    ("seeded: non-owner race", `Quick, seeded_island_race);
    ("cross-window touch is ordered", `Quick, cross_window_touch_is_ordered);
    ("race barrier semantics", `Quick, race_barrier_orders_all);
    ("certify: identical runs", `Quick, certify_identical_is_silent);
    ("certify: log divergence", `Quick, certify_log_divergence);
    ("certify: render divergence", `Quick, certify_render_divergence);
    ("certify: seed sensitivity", `Quick, seed_sensitivity);
    ("corpus: fleet capture clean", `Quick, fleet_capture_is_clean);
    ("corpus: cluster capture clean", `Quick, cluster_capture_is_clean);
    ("corpus: serve capture clean", `Quick, serve_capture_is_clean);
    ("corpus: crashy serve clean", `Quick, crashy_serve_capture_is_clean);
    ("corpus: capture is pure observation", `Quick, audited_run_matches_plain);
    ("audit: small corpus clean", `Slow, audit_small_corpus_clean);
    ("audit: json stable across jobs", `Quick, audit_json_stable_across_jobs);
    ("audit: rule filtering", `Quick, audit_rule_filter);
  ]
